(* Binary-search optimization over a SAT-encoded integer cost (§5.2).

   [SOLVE phi] is one call to the CDCL+PB solver; [minimize] wraps it in
   the paper's BIN_SEARCH loop:

     L := 0;  R := SOLVE(phi)
     while L < R do
       M := (L + R) / 2
       K := SOLVE(phi and L <= i <= M)
       if K = -1 then L := M + 1 else R := K

   (We advance L to M+1 rather than the paper's M, which fails to
   terminate when R = L + 1; the invariant "optimum in [L, R]" is
   preserved because an UNSAT interval [L, M] proves optimum > M.)

   Two modes reproduce the paper's §7 observation about reusing learned
   clauses across the probe sequence:

   - [Fresh]: every probe builds the formula from scratch in a new
     solver — the baseline the paper used for its tables;
   - [Incremental]: the formula is built once; each upper bound
     [cost <= M] is guarded by a fresh activation literal assumed for
     that probe only, and monotone lower bounds are added permanently.
     All clauses learned in earlier probes remain, pruning later ones —
     the paper reports a factor >= 2 from exactly this reuse.

   The loop is *anytime*: a shared {!Budget.t} governs the total spend
   across all probes, and when it trips mid-search the loop stops and
   reports the best model found so far together with the lower bound
   already proved, instead of discarding the incumbent.  Budget expiry
   is an answer, never an exception. *)

open Taskalloc_sat
open Taskalloc_pb
open Taskalloc_bv
module Budget = Taskalloc_sat.Budget

type mode = Fresh | Incremental

type stats = {
  mutable probes : int;
  mutable sat_probes : int;
  mutable unsat_probes : int;
  mutable interrupted_probes : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable bool_vars : int;
  mutable literals : int;
  mutable time_s : float;
}

let empty_stats () =
  {
    probes = 0;
    sat_probes = 0;
    unsat_probes = 0;
    interrupted_probes = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    bool_vars = 0;
    literals = 0;
    time_s = 0.;
  }

let pp_stats ppf s =
  Fmt.pf ppf "probes=%d (sat=%d unsat=%d) conflicts=%d vars=%d lits=%d time=%.2fs"
    s.probes s.sat_probes s.unsat_probes s.conflicts s.bool_vars s.literals s.time_s

type resolution = Optimal | Feasible_budget_exhausted | Infeasible | Unknown

let pp_resolution ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible_budget_exhausted -> Fmt.string ppf "feasible (budget exhausted)"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unknown -> Fmt.string ppf "unknown (budget exhausted)"

type 'a anytime = {
  incumbent : (int * 'a) option;
  lower_bound : int;
  upper_bound : int option;
  resolution : resolution;
}

let gap a =
  match a.incumbent with
  | None -> None
  | Some (ub, _) ->
    if ub <= a.lower_bound then Some 0.
    else Some (float_of_int (ub - a.lower_bound) /. float_of_int ub)

(* One SAT probe; records statistics.  Never raises: budget expiry is
   reported as [Solver.Unknown]. *)
let probe stats ?(assumptions = []) ?max_conflicts ~budget ctx =
  stats.probes <- stats.probes + 1;
  let s = Bv.solver ctx in
  let before = Solver.n_conflicts s in
  let result = Solver.solve ~assumptions ?max_conflicts ~budget s in
  stats.conflicts <- stats.conflicts + (Solver.n_conflicts s - before);
  stats.decisions <- Solver.n_decisions s;
  stats.propagations <- Solver.n_propagations s;
  stats.bool_vars <- max stats.bool_vars (Solver.n_vars s);
  stats.literals <- max stats.literals (Solver.n_literals s);
  (match result with
  | Solver.Sat -> stats.sat_probes <- stats.sat_probes + 1
  | Solver.Unsat -> stats.unsat_probes <- stats.unsat_probes + 1
  | Solver.Unknown -> stats.interrupted_probes <- stats.interrupted_probes + 1);
  result

(* Minimize the cost term produced by [build].  [on_sat ctx cost] is
   invoked on every improving model so the caller can extract its
   solution; the last extraction corresponds to the incumbent. *)
let minimize ?(mode = Incremental) ?max_conflicts
    ?(budget = Budget.unlimited ()) ?(gap_tol = 0.)
    ~(build : unit -> Bv.ctx * Bv.t) ~(on_sat : Bv.ctx -> int -> 'a) () =
  let stats = empty_stats () in
  let t0 = Unix.gettimeofday () in
  let finish outcome =
    stats.time_s <- Unix.gettimeofday () -. t0;
    (outcome, stats)
  in
  let infeasible =
    { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Infeasible }
  in
  let unknown =
    { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Unknown }
  in
  (* BIN_SEARCH over [lower, best_cost], shared by both modes through
     [reprobe : lower -> m -> Sat of new cost | Unsat | Unknown]. *)
  let run_search ~first_cost ~first_payload ~reprobe =
    let best_cost = ref first_cost in
    let best = ref first_payload in
    let lower = ref 0 in
    let interrupted = ref false in
    let converged () =
      !lower >= !best_cost
      || float_of_int (!best_cost - !lower) <= gap_tol *. float_of_int !best_cost
    in
    while (not !interrupted) && not (converged ()) do
      let m = (!lower + !best_cost) / 2 in
      match reprobe !lower m with
      | `Sat (k, payload) ->
        best_cost := k;
        best := payload
      | `Unsat -> lower := m + 1
      | `Unknown -> interrupted := true
    done;
    let resolution =
      if !lower >= !best_cost then Optimal else Feasible_budget_exhausted
    in
    {
      incumbent = Some (!best_cost, !best);
      lower_bound = (if resolution = Optimal then !best_cost else !lower);
      upper_bound = Some !best_cost;
      resolution;
    }
  in
  match mode with
  | Incremental -> (
    let ctx, cost = build () in
    let s = Bv.solver ctx in
    match probe stats ?max_conflicts ~budget ctx with
    | Solver.Unsat -> finish infeasible
    | Solver.Unknown -> finish unknown
    | Solver.Sat ->
      let first_cost = Bv.model_int ctx cost in
      let first_payload = on_sat ctx first_cost in
      let reprobe lower m =
        ignore lower;
        (* activation literal guarding [cost <= m] for this probe only *)
        let g = Circuits.fresh s in
        let le_bit = Bv.le_const ctx cost m in
        Bv.assert_implies ctx [ Circuits.Lit g ] le_bit;
        let r =
          match probe stats ~assumptions:[ g ] ?max_conflicts ~budget ctx with
          | Solver.Sat ->
            let k = Bv.model_int ctx cost in
            assert (k <= m);
            `Sat (k, on_sat ctx k)
          | Solver.Unsat ->
            (* the lower bound is entailed from now on: add permanently *)
            Bv.assert_ ctx (Bv.ge_const ctx cost (m + 1));
            `Unsat
          | Solver.Unknown -> `Unknown
        in
        (* retire the activation literal *)
        Solver.add_clause s [ Lit.neg g ];
        r
      in
      finish (run_search ~first_cost ~first_payload ~reprobe))
  | Fresh -> (
    (* first probe: unconstrained *)
    let ctx0, cost0 = build () in
    match probe stats ?max_conflicts ~budget ctx0 with
    | Solver.Unsat -> finish infeasible
    | Solver.Unknown -> finish unknown
    | Solver.Sat ->
      let first_cost = Bv.model_int ctx0 cost0 in
      let first_payload = on_sat ctx0 first_cost in
      let reprobe lower m =
        let ctx, cost = build () in
        Bv.assert_ ctx (Bv.ge_const ctx cost lower);
        Bv.assert_ ctx (Bv.le_const ctx cost m);
        match probe stats ?max_conflicts ~budget ctx with
        | Solver.Sat ->
          let k = Bv.model_int ctx cost in
          `Sat (k, on_sat ctx k)
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
      in
      finish (run_search ~first_cost ~first_payload ~reprobe))

(* Single feasibility check (no optimization). *)
type 'a feasibility = Feasible of 'a | No_solution | Undecided

let solve_feasible ?max_conflicts ?(budget = Budget.unlimited ())
    ~(build : unit -> Bv.ctx) ~(on_sat : Bv.ctx -> 'a) () =
  let ctx = build () in
  let s = Bv.solver ctx in
  match Solver.solve ?max_conflicts ~budget s with
  | Solver.Sat -> Feasible (on_sat ctx)
  | Solver.Unsat -> No_solution
  | Solver.Unknown -> Undecided
