lib/sat/dimacs.ml: Fmt List Lit Solver Stdlib String
