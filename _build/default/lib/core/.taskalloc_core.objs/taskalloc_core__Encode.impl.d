lib/core/encode.ml: Array Bv Circuits Fun Hashtbl Int List Lit Model Pb Solver Taskalloc_bv Taskalloc_pb Taskalloc_rt Taskalloc_sat Taskalloc_topology Topology
