(* The system model of §2.

   An architecture A = (P, K, kappa): ECUs, communication media (each a
   subset of P) and per-medium parameters.  A task set T of tuples
   tau_i = (t_i, c_i, gamma_i, pi_i, delta_i, d_i).  All times are
   integers in an arbitrary tick (the workload generators use 100 us
   ticks).

   The allowed-ECU set pi_i and the WCET function c_i are combined into
   an association list [wcets]: a task may run exactly on the ECUs it
   has a WCET for (minus globally barred gateway ECUs). *)

type medium_kind =
  | Priority (* CAN-like: global priority arbitration *)
  | Tdma (* token-ring/TTP-like: one slot per station, round length Lambda *)

type medium = {
  med_id : int;
  med_name : string;
  kind : medium_kind;
  ecus : int list;
  byte_time : int; (* ticks to transfer one byte *)
  frame_overhead : int; (* fixed ticks per frame (headers, stuffing, gaps) *)
}

type arch = {
  n_ecus : int;
  media : medium list;
  mem_capacity : int array; (* per-ECU memory; [max_int] = unconstrained *)
  gateway_service : int; (* ticks of store-and-forward cost per gateway hop *)
  barred : int list; (* ECUs reserved for gateway duty: no application tasks *)
}

type message = {
  msg_id : int;
  src : int; (* sending task id *)
  dst : int; (* receiving task id *)
  bytes : int;
  msg_deadline : int; (* Delta: end-to-end deadline *)
}

type task = {
  task_id : int;
  task_name : string;
  period : int; (* t_i: period or minimal inter-arrival time *)
  wcets : (int * int) list; (* (ecu, wcet): c_i restricted to pi_i *)
  deadline : int; (* d_i *)
  memory : int;
  separation : int list; (* delta_i: task ids that must go elsewhere *)
  messages : message list; (* gamma_i: outgoing messages *)
  jitter : int; (* release jitter J_i (>= 0) *)
  blocking : int; (* blocking factor B_i: longest lower-priority
                     non-preemptible section (>= 0) *)
  criticality : int; (* mixed-criticality level (>= 0); 0 = lowest.
                        Tasks below the highest level present may be
                        shed by the repair degradation ladder. *)
}

type problem = {
  arch : arch;
  tasks : task array;
  topology : Taskalloc_topology.Topology.t;
}

(* -- construction ------------------------------------------------------- *)

exception Invalid_model of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid_model s)) fmt

let make_problem ~arch ~tasks =
  let tasks = Array.of_list tasks in
  let n_tasks = Array.length tasks in
  Array.iteri
    (fun i task ->
      if task.task_id <> i then invalid "task %d has id %d (must be its index)" i task.task_id;
      if task.period <= 0 then invalid "task %d: period must be positive" i;
      if task.deadline <= 0 then invalid "task %d: deadline must be positive" i;
      if task.wcets = [] then invalid "task %d: no allowed ECU" i;
      if task.jitter < 0 then invalid "task %d: negative jitter" i;
      if task.blocking < 0 then invalid "task %d: negative blocking" i;
      if task.criticality < 0 then invalid "task %d: negative criticality" i;
      if task.jitter >= task.deadline then
        invalid "task %d: jitter %d leaves no room before deadline %d" i task.jitter
          task.deadline;
      List.iter
        (fun (e, c) ->
          if e < 0 || e >= arch.n_ecus then invalid "task %d: unknown ECU %d" i e;
          if c <= 0 then invalid "task %d: WCET on ECU %d must be positive" i e;
          if c > task.deadline then invalid "task %d: WCET %d exceeds deadline" i c)
        task.wcets;
      List.iter
        (fun j ->
          if j < 0 || j >= n_tasks then invalid "task %d: unknown separation peer %d" i j)
        task.separation;
      List.iter
        (fun m ->
          if m.src <> i then invalid "task %d: message %d has src %d" i m.msg_id m.src;
          if m.dst < 0 || m.dst >= n_tasks then
            invalid "task %d: message to unknown task %d" i m.dst;
          if m.bytes <= 0 then invalid "message %d: empty payload" m.msg_id;
          if m.msg_deadline <= 0 then invalid "message %d: no deadline" m.msg_id)
        task.messages)
    tasks;
  let topology =
    Taskalloc_topology.Topology.create ~n_ecus:arch.n_ecus
      ~media:(List.map (fun m -> m.ecus) arch.media)
  in
  { arch; tasks; topology }

(* -- derived quantities -------------------------------------------------- *)

(* ECUs the task may be placed on: those it has a WCET for, minus the
   barred gateway ECUs (eq. 4's placement restriction). *)
let allowed_ecus problem task =
  List.filter_map
    (fun (e, _) -> if List.mem e problem.arch.barred then None else Some e)
    task.wcets

let wcet_on task ecu =
  match List.assoc_opt ecu task.wcets with
  | Some c -> c
  | None -> invalid "task %d has no WCET on ECU %d" task.task_id ecu

(* Worst-case frame transmission time rho of a message on a medium. *)
let frame_time medium msg = medium.frame_overhead + (medium.byte_time * msg.bytes)

(* Best-case transmission time beta; with fixed frame layout it equals
   the frame time (no error retransmissions modelled). *)
let best_case_time = frame_time

let medium_by_id problem k = List.nth problem.arch.media k

(* All messages of the problem, indexed by msg_id. *)
let all_messages problem =
  let msgs =
    Array.to_list problem.tasks |> List.concat_map (fun t -> t.messages)
  in
  let sorted = List.sort (fun a b -> Int.compare a.msg_id b.msg_id) msgs in
  List.iteri
    (fun i m -> if m.msg_id <> i then invalid "message ids must be dense (got %d at %d)" m.msg_id i)
    sorted;
  Array.of_list sorted

(* Period of a message = period of its sender (it is queued at each
   completion of the sending task). *)
let message_period problem msg = problem.tasks.(msg.src).period

(* -- priority orders ------------------------------------------------------ *)

(* Deadline-monotonic priority for tasks (eqs. 9-10), ties broken by id:
   [task_higher_prio a b] iff a has higher priority than b. *)
let task_higher_prio a b =
  a.deadline < b.deadline || (a.deadline = b.deadline && a.task_id < b.task_id)

(* Messages are priority-ordered by deadline, ties by id. *)
let msg_higher_prio a b =
  a.msg_deadline < b.msg_deadline
  || (a.msg_deadline = b.msg_deadline && a.msg_id < b.msg_id)

(* -- allocations ----------------------------------------------------------- *)

type route =
  | Local (* sender and receiver share an ECU: no medium used *)
  | Path of int list (* ordered media ids *)

type allocation = {
  task_ecu : int array; (* Pi *)
  msg_route : route array; (* Gamma, by msg_id *)
  slots : (int * int, int) Hashtbl.t; (* (medium, ecu) -> TDMA slot length *)
  priority_rank : int array option;
      (* Phi: total priority order (smaller rank = higher priority).
         [None] means plain deadline-monotonic order with ties broken by
         task id; the SAT encoder emits [Some] when it resolved
         equal-deadline ties itself (eqs. 9-10). *)
}

(* Priority order actually in force under an allocation: the recorded
   total order when present, deadline-monotonic otherwise. *)
let higher_prio_under alloc a b =
  match alloc.priority_rank with
  | Some rank -> rank.(a.task_id) < rank.(b.task_id)
  | None -> task_higher_prio a b

let slot_length alloc ~medium ~ecu =
  match Hashtbl.find_opt alloc.slots (medium, ecu) with
  | Some s -> s
  | None -> 0

(* TDMA round length Lambda of a medium under an allocation. *)
let round_length problem alloc k =
  let medium = medium_by_id problem k in
  List.fold_left (fun acc e -> acc + slot_length alloc ~medium:k ~ecu:e) 0 medium.ecus

(* Station from which a message is emitted onto medium [k] of its path:
   the sender's ECU on the first hop, the entry gateway afterwards. *)
let station_on problem alloc msg k =
  match alloc.msg_route.(msg.msg_id) with
  | Local -> None
  | Path path ->
    let rec go prev = function
      | [] -> None
      | k' :: rest ->
        if k' = k then
          match prev with
          | None -> Some alloc.task_ecu.(msg.src)
          | Some p ->
            (match Taskalloc_topology.Topology.gateway_between problem.topology p k with
            | Some g -> Some g
            | None -> invalid "route of message %d uses non-adjacent media" msg.msg_id)
        else go (Some k') rest
    in
    go None path

(* -- utilization ----------------------------------------------------------- *)

let ecu_utilization_permille problem alloc e =
  Array.fold_left
    (fun acc task ->
      if alloc.task_ecu.(task.task_id) = e then
        acc + (wcet_on task e * 1000 / task.period)
      else acc)
    0 problem.tasks

(* Bus load (the paper's U_CAN) of a medium in permille: the sum over
   messages routed across it of rho/t. *)
let medium_load_permille problem alloc k =
  let medium = medium_by_id problem k in
  let msgs = all_messages problem in
  Array.fold_left
    (fun acc msg ->
      match alloc.msg_route.(msg.msg_id) with
      | Path path when List.mem k path ->
        acc + (frame_time medium msg * 1000 / message_period problem msg)
      | _ -> acc)
    0 msgs
