(* Named workload instances backing the benchmark suite (Tables 1-4).
   All are deterministic: same seed, same problem. *)

open Taskalloc_rt

(* Split [n] tasks into chains of 3-4 tasks (matching the 12-chain /
   43-task structure of [5] when n = 43). *)
let chain_split n =
  assert (n >= 2);
  let rec go acc remaining toggle =
    if remaining = 0 then List.rev acc
    else if remaining = 5 then List.rev (2 :: 3 :: acc)
    else if remaining <= 4 then List.rev (remaining :: acc)
    else
      let len = if toggle then 3 else 4 in
      go (len :: acc) (remaining - len) (not toggle)
  in
  go [] n true

(* The 43-task / 12-chain / 8-ECU benchmark in the shape of [5], on a
   token ring (Table 1, first row). *)
let tindell43 ?(seed = 42) () =
  let arch = Archs.token_ring ~n_ecus:8 () in
  Generate.generate ~spec:{ Generate.default_spec with seed } arch

(* The same task set shape on a CAN bus (Table 1, second row). *)
let tindell43_can ?(seed = 42) () =
  let arch = Archs.can_bus ~n_ecus:8 () in
  Generate.generate ~spec:{ Generate.default_spec with seed } arch

(* Task-set scaling series (Table 3): n in {7, 12, 20, 30, 43}. *)
let task_scaling ?(seed = 42) ~n () =
  let arch = Archs.token_ring ~n_ecus:8 () in
  Generate.generate
    ~spec:{ Generate.default_spec with seed; chain_lengths = chain_split n }
    arch

(* Architecture scaling series (Table 2): 30 tasks on n ECUs. *)
let arch_scaling ?(seed = 42) ~n_ecus () =
  let arch = Archs.token_ring ~n_ecus () in
  Generate.generate
    ~spec:{ Generate.default_spec with seed; chain_lengths = chain_split 30 }
    arch

type hier = A | B | C

(* Hierarchical experiments (Table 4): the 43-task set on architectures
   A, B, C of Fig. 2. *)
let hierarchical ?(seed = 42) ?(n_tasks = 43) which =
  let arch =
    match which with
    | A -> Archs.arch_a ()
    | B -> Archs.arch_b ()
    | C -> Archs.arch_c ()
  in
  Generate.generate
    ~spec:{ Generate.default_spec with seed; chain_lengths = chain_split n_tasks }
    arch

(* Variant of architecture C with the upper bus replaced by CAN (end of
   §6: "exchanging the above media of architecture C by a CAN bus"). *)
let hierarchical_c_can ?(seed = 42) ?(n_tasks = 43) () =
  let arch = Archs.arch_c ~kind0:Model.Priority () in
  Generate.generate
    ~spec:{ Generate.default_spec with seed; chain_lengths = chain_split n_tasks }
    arch

(* A small instance with release jitter and blocking factors, to
   exercise the extended task model end to end. *)
let small_jittery ?(seed = 7) ?(n_ecus = 3) ?(n_tasks = 6) () =
  let arch = Archs.token_ring ~n_ecus () in
  Generate.generate
    ~spec:
      {
        Generate.default_spec with
        seed;
        chain_lengths = chain_split n_tasks;
        n_separations = 1;
        pin_fraction = 0.2;
        jitter_hi = 5;
        blocking_hi = 3;
      }
    arch

(* Small instances for tests and quick demos. *)
let small ?(seed = 7) ?(n_ecus = 3) ?(n_tasks = 6) () =
  let arch = Archs.token_ring ~n_ecus () in
  Generate.generate
    ~spec:
      {
        Generate.default_spec with
        seed;
        chain_lengths = chain_split n_tasks;
        n_separations = 1;
        pin_fraction = 0.2;
      }
    arch

let small_can ?(seed = 7) ?(n_ecus = 3) ?(n_tasks = 6) () =
  let arch = Archs.can_bus ~n_ecus () in
  Generate.generate
    ~spec:
      {
        Generate.default_spec with
        seed;
        chain_lengths = chain_split n_tasks;
        n_separations = 1;
        pin_fraction = 0.2;
      }
    arch

let small_hierarchical ?(seed = 7) ?(n_tasks = 8) which =
  let arch =
    match which with
    | A -> Archs.arch_a ()
    | B -> Archs.arch_b ()
    | C -> Archs.arch_c ()
  in
  Generate.generate
    ~spec:
      {
        Generate.default_spec with
        seed;
        chain_lengths = chain_split n_tasks;
        n_separations = 0;
        pin_fraction = 0.15;
      }
    arch
