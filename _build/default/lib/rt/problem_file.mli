(** Plain-text problem files, so systems can be described without
    writing OCaml.  The format is line-based with ['#'] comments:

    {v
    ecus 4
    memory 0 20              # per-ECU capacity (omitted = unlimited)
    gateway_service 2
    barred 3                 # gateway-only ECU
    medium ring0 tdma 1 2 0 1 2      # name kind byte_time overhead ecus...
    medium can0 priority 1 5 2 3

    task sensor 100 60 4     # name period deadline memory
      wcet 0 12              # ecu wcet (one line per admissible ECU)
      jitter 2               # optional release jitter (default 0)
      blocking 1             # optional blocking factor (default 0)
      separate processor     # replica separation, by task name
      message processor 4 90 # dst bytes deadline
    v}

    Medium kinds: [tdma] (aliases [token-ring], [ttp]) and [priority]
    (alias [can]).  Tasks may reference tasks declared later.  Message
    ids are assigned in declaration order. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Model.problem
(** Raises {!Parse_error} on syntax errors and
    {!Model.Invalid_model} on semantic ones. *)

val parse_file : string -> Model.problem

val print : Format.formatter -> Model.problem -> unit
(** Emit the same format; [parse_string (to_string p)] reconstructs
    [p]. *)

val to_string : Model.problem -> string
val write_file : string -> Model.problem -> unit
