lib/rt/sim.mli: Format Model
