lib/rt/analysis.ml: Array List Model Option
