type t = { fd : Unix.file_descr; ic : in_channel }

let addr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let connect listen =
  let domain, addr = addr_of listen in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let wait_ready ?(timeout = 5.0) listen =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    match connect listen with
    | c ->
      close c;
      true
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.02;
        poll ()
      end
  in
  poll ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let request_raw t line =
  write_all t.fd (line ^ "\n");
  input_line t.ic

let request t req = Json.parse (request_raw t (Json.to_string req))

(* split send/receive, for verbs that answer with more than one line
   ([watch] streams progress events before the final answer) *)
let send t req = write_all t.fd (Json.to_string req ^ "\n")
let recv t = Json.parse (input_line t.ic)
