lib/sat/luby.ml:
