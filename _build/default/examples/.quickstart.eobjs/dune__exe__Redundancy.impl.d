examples/redundancy.ml: Allocator Array Check Encode Fmt Model Taskalloc_core Taskalloc_rt
