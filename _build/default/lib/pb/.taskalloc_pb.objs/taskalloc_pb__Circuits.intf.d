lib/pb/circuits.mli: Lit Solver Taskalloc_sat
