(* Differential and certifying fuzzing of the solver stack.

   Instances are kept small enough (<= 16 variables) that a brute-force
   enumeration over all assignments is an unimpeachable oracle.  The
   solver's Sat answers are re-evaluated semantically; its Unsat
   answers must come with a DRUP trace the independent checker accepts.
   Every case derives from one integer seed, so a report line is a
   complete reproduction recipe. *)

open Taskalloc_sat
module Rng = Taskalloc_workloads.Rng
module Proof = Taskalloc_proof.Proof
module Portfolio = Taskalloc_portfolio.Portfolio

type pb_instance = {
  pb_vars : int;
  constraints : Proof.pb list;
}

type case = Cnf of Dimacs.cnf | Pb of pb_instance

let pp_case ppf = function
  | Cnf cnf -> Dimacs.print_cnf ppf cnf
  | Pb { pb_vars; constraints } ->
    Fmt.pf ppf "p pb %d %d@." pb_vars (List.length constraints);
    List.iter
      (fun { Proof.terms; degree } ->
        List.iter (fun (a, l) -> Fmt.pf ppf "%+d x%d " a l) terms;
        Fmt.pf ppf ">= %d@." degree)
      constraints

(* -- generation --------------------------------------------------------- *)

(* [len] distinct variables drawn from [1..nvars]. *)
let distinct_vars rng nvars len =
  List.filteri (fun i _ -> i < len) (Rng.shuffle rng (List.init nvars (fun v -> v + 1)))

let gen_cnf ~seed ~max_vars =
  let rng = Rng.create ((2 * seed) + 1) in
  let nvars = Rng.range rng 3 (max 3 max_vars) in
  (* clause counts spanning the under- and over-constrained regimes,
     centred near the 3-SAT threshold ratio so both answers are common *)
  let nclauses = Rng.range rng nvars ((9 * nvars / 2) + 2) in
  let clause () =
    let len = if Rng.bool rng 0.15 then Rng.range rng 1 2 else 3 in
    distinct_vars rng nvars len
    |> List.map (fun v -> if Rng.bool rng 0.5 then v else -v)
  in
  { Dimacs.num_vars = nvars; clauses = List.init nclauses (fun _ -> clause ()) }

let gen_pb ~seed ~max_vars =
  let rng = Rng.create ((2 * seed) + 1) in
  let nvars = Rng.range rng 2 (max 2 max_vars) in
  let ncons = Rng.range rng 1 (2 * nvars) in
  let constraint_ () =
    let k = Rng.range rng 1 (min 5 nvars) in
    let terms =
      distinct_vars rng nvars k
      |> List.map (fun v ->
             (Rng.range rng 1 4, if Rng.bool rng 0.5 then v else -v))
    in
    let total = List.fold_left (fun s (a, _) -> s + a) 0 terms in
    (* degrees from trivially-true (0) to just-infeasible (total + 2) *)
    { Proof.terms; degree = Rng.range rng 0 (total + 2) }
  in
  { pb_vars = nvars; constraints = List.init ncons (fun _ -> constraint_ ()) }

let gen_case ~seed ~max_vars =
  if seed land 1 = 0 then Cnf (gen_cnf ~seed ~max_vars)
  else Pb (gen_pb ~seed ~max_vars)

(* -- brute-force oracle ------------------------------------------------- *)

(* DIMACS literal value under assignment bitmask [m]. *)
let lit_true m l = (m lsr (abs l - 1)) land 1 = if l > 0 then 1 else 0

let eval_cnf cnf m =
  List.for_all (fun c -> List.exists (lit_true m) c) cnf.Dimacs.clauses

let eval_pb { pb_vars = _; constraints } m =
  List.for_all
    (fun { Proof.terms; degree } ->
      List.fold_left (fun s (a, l) -> if lit_true m l then s + a else s) 0 terms
      >= degree)
    constraints

let nvars_of = function
  | Cnf cnf -> cnf.Dimacs.num_vars
  | Pb { pb_vars; _ } -> pb_vars

let eval case m =
  match case with Cnf cnf -> eval_cnf cnf m | Pb pb -> eval_pb pb m

let oracle case =
  let n = nvars_of case in
  let rec go m = m < 1 lsl n && (eval case m || go (m + 1)) in
  go 0

(* -- differential driver ------------------------------------------------ *)

(* Load a case into a fresh solver with proof recording installed
   before the first constraint, so add-time refutations are logged. *)
let load case =
  let s = Solver.create () in
  let trace = Proof.record s in
  (match case with
  | Cnf cnf ->
    for _ = 1 to cnf.Dimacs.num_vars do
      ignore (Solver.new_var s)
    done;
    List.iter
      (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c))
      cnf.Dimacs.clauses
  | Pb { pb_vars; constraints } ->
    for _ = 1 to pb_vars do
      ignore (Solver.new_var s)
    done;
    List.iter
      (fun { Proof.terms; degree } ->
        if degree > 0 then
          Solver.add_pb_geq s
            (List.map (fun (a, l) -> (a, Lit.of_dimacs l)) terms)
            degree)
      constraints);
  (s, trace)

let model_mask case s =
  let n = nvars_of case in
  let m = ref 0 in
  for v = 0 to n - 1 do
    if Solver.model_value s (Lit.of_var v) then m := !m lor (1 lsl v)
  done;
  !m

(* The CNF/PB view of a case that the proof checker certifies against. *)
let checker_view = function
  | Cnf cnf -> (cnf, [])
  | Pb { pb_vars; constraints } ->
    ({ Dimacs.num_vars = pb_vars; clauses = [] }, constraints)

(* Solve a case sequentially or as a [jobs]-worker portfolio.  Every
   worker records a proof (installed by [load] before the constraints),
   so no worker ever imports shared clauses and the winner's trace is
   self-contained — the certifying pipeline below is identical in both
   modes.  Returns the deciding solver and its trace. *)
let solve_case ~jobs case =
  if jobs <= 1 then begin
    let s, trace = load case in
    (Solver.solve s, Some (s, trace))
  end
  else begin
    let outcome =
      Portfolio.solve ~jobs
        ~build:(fun _i ->
          let s, trace = load case in
          ((s, trace), s))
        ()
    in
    (outcome.Portfolio.result, outcome.Portfolio.payload)
  end

let check_case ?(jobs = 1) case =
  let expected = oracle case in
  match solve_case ~jobs case with
  | Solver.Unknown, _ -> Error "solver returned Unknown without a budget"
  | _, None -> Error "portfolio returned no winner"
  | Solver.Sat, Some (s, _) ->
    if not expected then Error "solver says Sat, oracle says Unsat"
    else if not (eval case (model_mask case s)) then
      Error "Sat model does not satisfy the instance"
    else Ok ()
  | Solver.Unsat, Some (_, trace) ->
    if expected then Error "solver says Unsat, oracle says Sat"
    else begin
      let cnf, pbs = checker_view case in
      match Proof.verify ~pbs cnf (trace ()) with
      | Proof.Valid -> Ok ()
      | Proof.Invalid { step; reason } ->
        Error (Fmt.str "Unsat proof rejected at step %d: %s" step reason)
    end

(* -- shrinking ---------------------------------------------------------- *)

let fails ?jobs case = Result.is_error (check_case ?jobs case)

let without i xs = List.filteri (fun j _ -> j <> i) xs

(* One-step simplifications, most aggressive first. *)
let variants = function
  | Cnf cnf ->
    let n = List.length cnf.Dimacs.clauses in
    List.init n (fun i ->
        Cnf { cnf with Dimacs.clauses = without i cnf.Dimacs.clauses })
    @ List.concat
        (List.mapi
           (fun i c ->
             if List.length c <= 1 then []
             else
               List.mapi
                 (fun j _ ->
                   Cnf
                     {
                       cnf with
                       Dimacs.clauses =
                         List.mapi
                           (fun i' c' -> if i' = i then without j c' else c')
                           cnf.Dimacs.clauses;
                     })
                 c)
           cnf.Dimacs.clauses)
  | Pb pb ->
    let n = List.length pb.constraints in
    let update i f =
      Pb
        {
          pb with
          constraints =
            List.mapi (fun i' c -> if i' = i then f c else c) pb.constraints;
        }
    in
    List.init n (fun i -> Pb { pb with constraints = without i pb.constraints })
    @ List.concat
        (List.mapi
           (fun i { Proof.terms; degree } ->
             (if degree > 0 then
                [ update i (fun c -> { c with Proof.degree = degree - 1 }) ]
              else [])
             @ (if List.length terms > 1 then
                  List.mapi
                    (fun j _ ->
                      update i (fun c ->
                          { c with Proof.terms = without j c.Proof.terms }))
                    terms
                else [])
             @ List.concat
                 (List.mapi
                    (fun j (a, _) ->
                      if a <= 1 then []
                      else
                        [
                          update i (fun c ->
                              {
                                c with
                                Proof.terms =
                                  List.mapi
                                    (fun j' (a', l') ->
                                      if j' = j then (a' - 1, l') else (a', l'))
                                    c.Proof.terms;
                              });
                        ])
                    terms))
           pb.constraints)

let shrink ?jobs case =
  if not (fails ?jobs case) then case
  else begin
    let fuel = ref 400 in
    let rec go case =
      let rec first = function
        | [] -> None
        | v :: rest ->
          if !fuel <= 0 then None
          else begin
            decr fuel;
            if fails ?jobs v then Some v else first rest
          end
      in
      match first (variants case) with Some v -> go v | None -> case
    in
    go case
  end

(* -- campaigns ---------------------------------------------------------- *)

type failure = {
  fail_seed : int;
  fail_case : case;
  fail_error : string;
}

module Obs = Taskalloc_obs.Obs

type report = {
  iters : int;
  n_sat : int;
  n_unsat : int;
  failures : failure list;
  solve_us : Obs.Hist.t;
}

let run ?(max_vars = 10) ?(jobs = 1) ?(log = ignore) ~iters ~seed () =
  let max_vars = min 16 (max 2 max_vars) in
  let rng = Rng.create seed in
  let n_sat = ref 0 and n_unsat = ref 0 in
  let failures = ref [] in
  (* per-iteration solve-time histogram (µs): the campaign doubles as a
     perf canary — a regression shifts the distribution even when every
     differential check still passes.  Iteration granularity, so the
     two clock samples per case are nowhere near any hot loop. *)
  let solve_us = Obs.Hist.create () in
  for i = 0 to iters - 1 do
    let case_seed = Rng.int rng 0x3FFFFFFF in
    let case = gen_case ~seed:case_seed ~max_vars in
    if oracle case then incr n_sat else incr n_unsat;
    let t0 = Unix.gettimeofday () in
    let checked = check_case ~jobs case in
    Obs.Hist.add solve_us
      (int_of_float (Float.max 0. ((Unix.gettimeofday () -. t0) *. 1e6)));
    match checked with
    | Ok () -> ()
    | Error e ->
      log (Fmt.str "iter %d (seed %d): %s" i case_seed e);
      failures :=
        { fail_seed = case_seed; fail_case = shrink ~jobs case; fail_error = e }
        :: !failures
  done;
  {
    iters;
    n_sat = !n_sat;
    n_unsat = !n_unsat;
    failures = List.rev !failures;
    solve_us;
  }

let pp_report ppf r =
  Fmt.pf ppf "%d cases: %d sat, %d unsat, %d failures@." r.iters r.n_sat
    r.n_unsat
    (List.length r.failures);
  if Obs.Hist.count r.solve_us > 0 then
    Fmt.pf ppf "solve time per case: %a us@." Obs.Hist.pp r.solve_us;
  List.iter
    (fun f ->
      Fmt.pf ppf "FAILURE (seed %d): %s@.minimized reproducer:@.%a" f.fail_seed
        f.fail_error pp_case f.fail_case)
    r.failures

(* -- disruption campaigns ----------------------------------------------- *)

module Model = Taskalloc_rt.Model
module Check = Taskalloc_rt.Check
module Allocator = Taskalloc_core.Allocator
module Heuristics = Taskalloc_heuristics.Heuristics
module Repair = Taskalloc_repair.Repair

type disruption_report = {
  d_iters : int;
  d_events : int;
  d_repaired : int;
  d_degraded : int;
  d_irreparable : int;
  d_unknown : int;
  d_skipped : int;
  d_oracle_checked : int;
  d_failures : string list;
}

(* Small message-free instances with pairwise-distinct deadlines: the
   deadline-monotonic priority order is then unique, so the analytical
   checker and the SAT encoder agree exactly and "minimal migration
   count" is well defined for the brute-force oracle. *)
let gen_disruption_problem rng =
  let n_ecus = Rng.range rng 2 3 in
  let n_tasks = Rng.range rng 3 5 in
  let task i =
    {
      Model.task_id = i;
      task_name = Printf.sprintf "t%d" i;
      period = 200;
      wcets = List.init n_ecus (fun e -> (e, Rng.range rng 8 22));
      deadline = (Rng.range rng 5 12 * 8) + i (* pairwise distinct *);
      memory = 1;
      separation = [];
      messages = [];
      jitter = 0;
      blocking = 0;
      criticality = Rng.int rng 2;
    }
  in
  let arch =
    {
      Model.n_ecus;
      media =
        [
          {
            Model.med_id = 0;
            med_name = "bus";
            kind = Model.Tdma;
            ecus = List.init n_ecus Fun.id;
            byte_time = 1;
            frame_overhead = 2;
          };
        ];
      mem_capacity = Array.make n_ecus 64;
      gateway_service = 0;
      barred = [];
    }
  in
  Model.make_problem ~arch ~tasks:(List.init n_tasks task)

let gen_disruption_event rng st k =
  let p = Repair.problem st in
  let arch = p.Model.arch in
  let alive =
    List.filter
      (fun e -> not (List.mem e arch.Model.barred))
      (List.init arch.Model.n_ecus Fun.id)
  in
  let n_tasks = Array.length p.Model.tasks in
  let kind = Rng.int rng 4 in
  let kind = if kind = 0 && List.length alive <= 1 then 1 else kind in
  match kind with
  | 0 -> Repair.Ecu_failure { ecu = Rng.pick rng alive }
  | 1 ->
    Repair.Wcet_overrun
      { task = Rng.int rng n_tasks; percent = Rng.range rng 110 250 }
  | 2 ->
    Repair.Task_arrival
      {
        name = Printf.sprintf "nu%d" k;
        period = 200;
        deadline = Rng.range rng 100 180;
        memory = 1;
        criticality = Rng.int rng 2;
        wcets = List.init arch.Model.n_ecus (fun e -> (e, Rng.range rng 8 20));
      }
  | _ -> Repair.Bus_degradation { medium = 0; percent = Rng.range rng 120 300 }

(* brute-force minimal-migration oracle: least Hamming distance from
   the pre-event seats to any placement the analytical checker accepts *)
let oracle_min_migrations old_alloc (d : Repair.disrupted) =
  if d.Repair.d_doomed <> [] then None
  else begin
    let p = d.Repair.d_problem in
    let domains =
      Array.map
        (fun t -> Array.of_list (Model.allowed_ecus p t))
        p.Model.tasks
    in
    let n = Array.length domains in
    let best = ref None in
    let cur = Array.make n 0 in
    let rec go i =
      if i = n then begin
        match Heuristics.try_complete p (Array.copy cur) with
        | Some a when Check.check p a = [] ->
          let dist = ref 0 in
          Array.iteri
            (fun j e ->
              if e <> old_alloc.Model.task_ecu.(d.Repair.d_kept.(j)) then
                incr dist)
            cur;
          best :=
            Some (match !best with None -> !dist | Some b -> min b !dist)
        | _ -> ()
      end
      else
        Array.iter
          (fun e ->
            cur.(i) <- e;
            go (i + 1))
          domains.(i)
    in
    if Array.for_all (fun dom -> Array.length dom > 0) domains then go 0;
    !best
  end

(* one campaign iteration, deterministic in (seed, i) *)
let disruption_iter ~seed i =
  let rng = Rng.create (seed lxor (i * 0x9E3779B1)) in
  let fail = ref [] in
  let failf fmt = Fmt.kstr (fun m -> fail := Fmt.str "iter %d: %s" i m :: !fail) fmt in
  let events = ref 0
  and repaired = ref 0
  and degraded = ref 0
  and irreparable = ref 0
  and unknown = ref 0
  and oracle_checked = ref 0 in
  let problem = gen_disruption_problem rng in
  let skipped =
    match Allocator.find_feasible ~fallback:false problem with
    | Allocator.Solved res ->
      let alloc = res.Allocator.allocation in
      (* phase 1: oracle cross-check of the first event (no shedding,
         so minimality is a plain Hamming-distance question) *)
      let st0 = Repair.create problem alloc in
      let ev0 = gen_disruption_event rng st0 0 in
      (match ev0 with
      | Repair.Ecu_failure _ | Repair.Wcet_overrun _ -> (
        incr oracle_checked;
        let oracle =
          oracle_min_migrations alloc (Repair.apply_event problem ev0)
        in
        match (Repair.repair ~allow_shed:false st0 ev0, oracle) with
        | Repair.Repaired r, Some b ->
          if List.length r.Repair.migrations <> b then
            failf "repair migrated %d, oracle minimum %d (%a)"
              (List.length r.Repair.migrations)
              b
              (Repair.pp_event problem)
              ev0
        | Repair.Repaired _, None ->
          failf "repair succeeded where the oracle proves infeasibility"
        | Repair.Irreparable _, Some b ->
          failf "repair gave up, oracle repairs with %d migrations" b
        | Repair.Irreparable _, None -> ()
        | Repair.Unknown, _ -> failf "unbudgeted repair returned Unknown")
      | _ -> ());
      (* phase 2: multi-event campaign with the degradation ladder on *)
      let st = Repair.create problem alloc in
      let n_events = Rng.range rng 2 4 in
      for k = 1 to n_events do
        incr events;
        let ev = gen_disruption_event rng st k in
        let tasks_before = Array.length (Repair.problem st).Model.tasks in
        let seats_before = Array.copy (Repair.allocation st).Model.task_ecu in
        match Repair.repair st ev with
        | Repair.Repaired r ->
          incr repaired;
          if r.Repair.degraded then incr degraded;
          if r.Repair.check_violations <> 0 then
            failf "event %d: analyzer found %d violations" k
              r.Repair.check_violations;
          if r.Repair.sim_misses <> 0 then
            failf "event %d: %d deadline misses in simulation" k
              r.Repair.sim_misses
        | Repair.Irreparable _ ->
          incr irreparable;
          if
            Array.length (Repair.problem st).Model.tasks <> tasks_before
            || (Repair.allocation st).Model.task_ecu <> seats_before
          then failf "event %d: irreparable repair mutated the state" k
        | Repair.Unknown ->
          incr unknown;
          failf "event %d: unbudgeted repair returned Unknown" k
      done;
      0
    | Allocator.Infeasible | Allocator.Unknown -> 1
  in
  {
    d_iters = 1;
    d_events = !events;
    d_repaired = !repaired;
    d_degraded = !degraded;
    d_irreparable = !irreparable;
    d_unknown = !unknown;
    d_skipped = skipped;
    d_oracle_checked = !oracle_checked;
    d_failures = List.rev !fail;
  }

let merge_disruptions a b =
  {
    d_iters = a.d_iters + b.d_iters;
    d_events = a.d_events + b.d_events;
    d_repaired = a.d_repaired + b.d_repaired;
    d_degraded = a.d_degraded + b.d_degraded;
    d_irreparable = a.d_irreparable + b.d_irreparable;
    d_unknown = a.d_unknown + b.d_unknown;
    d_skipped = a.d_skipped + b.d_skipped;
    d_oracle_checked = a.d_oracle_checked + b.d_oracle_checked;
    d_failures = a.d_failures @ b.d_failures;
  }

let empty_disruption_report =
  {
    d_iters = 0;
    d_events = 0;
    d_repaired = 0;
    d_degraded = 0;
    d_irreparable = 0;
    d_unknown = 0;
    d_skipped = 0;
    d_oracle_checked = 0;
    d_failures = [];
  }

let run_disruptions ?(jobs = 1) ?(log = ignore) ~iters ~seed () =
  let results =
    if jobs <= 1 then List.init iters (disruption_iter ~seed)
    else begin
      (* iterations are deterministic in (seed, i), so splitting them
         round-robin over domains changes nothing but wall time *)
      let chunks = Array.make (max 1 jobs) [] in
      for i = iters - 1 downto 0 do
        chunks.(i mod Array.length chunks) <- i :: chunks.(i mod Array.length chunks)
      done;
      Array.to_list chunks
      |> List.map (fun idxs ->
             Domain.spawn (fun () -> List.map (disruption_iter ~seed) idxs))
      |> List.concat_map Domain.join
    end
  in
  let report = List.fold_left merge_disruptions empty_disruption_report results in
  List.iter log report.d_failures;
  report

let pp_disruption_report ppf r =
  Fmt.pf ppf
    "%d campaigns (%d skipped infeasible), %d events: %d repaired (%d \
     degraded), %d irreparable, %d unknown; %d oracle cross-checks, %d \
     failures@."
    r.d_iters r.d_skipped r.d_events r.d_repaired r.d_degraded r.d_irreparable
    r.d_unknown r.d_oracle_checked
    (List.length r.d_failures);
  List.iter (fun f -> Fmt.pf ppf "FAILURE: %s@." f) r.d_failures

(* -- lazy-vs-eager differential campaigns -------------------------------- *)

module Encode = Taskalloc_core.Encode

type lazy_report = {
  l_iters : int;
  l_sat : int;
  l_unsat : int;
  l_unknown : int;
  l_eager_vars : int;
  l_lazy_vars : int;
  l_failures : string list;
}

(* Small full-featured instances: distinct deadlines (unique DM order),
   one bus of either kind, occasional messages, jitter and blocking.
   Unlike the PB fuzzer above, the oracle here is the eager encoding
   itself — any divergence of the CEGAR abstraction from it is a bug in
   the refinement loop, the relaxation cuts, or the checker closures. *)
let gen_lazy_problem rng =
  let n_ecus = Rng.range rng 2 3 in
  let n_tasks = Rng.range rng 3 6 in
  let kind = if Rng.int rng 2 = 0 then Model.Tdma else Model.Priority in
  let with_msg = n_tasks >= 2 && Rng.int rng 2 = 0 in
  let task i =
    let messages =
      if with_msg && i = 0 then
        [
          {
            Model.msg_id = 0;
            src = 0;
            dst = 1;
            bytes = Rng.range rng 2 8;
            msg_deadline = Rng.range rng 60 160;
          };
        ]
      else []
    in
    {
      Model.task_id = i;
      task_name = Printf.sprintf "t%d" i;
      period = 200;
      wcets = List.init n_ecus (fun e -> (e, Rng.range rng 8 22));
      deadline = (Rng.range rng 5 12 * 8) + i (* pairwise distinct *);
      memory = 1;
      separation = [];
      messages;
      jitter = Rng.int rng 3;
      blocking = Rng.int rng 4;
      criticality = 0;
    }
  in
  let arch =
    {
      Model.n_ecus;
      media =
        [
          {
            Model.med_id = 0;
            med_name = "bus";
            kind;
            ecus = List.init n_ecus Fun.id;
            byte_time = 1;
            frame_overhead = 2;
          };
        ];
      mem_capacity = Array.make n_ecus 64;
      gateway_service = 0;
      barred = [];
    }
  in
  (Model.make_problem ~arch ~tasks:(List.init n_tasks task), kind)

let lazy_iter ~seed i =
  let rng = Rng.create (seed lxor (i * 0x45D9F3B5)) in
  let fail = ref [] in
  let failf fmt =
    Fmt.kstr (fun m -> fail := Fmt.str "iter %d: %s" i m :: !fail) fmt
  in
  let problem, kind = gen_lazy_problem rng in
  let objective =
    match (Rng.int rng 3, kind) with
    | 0, Model.Tdma -> Encode.Min_trt 0
    | 1, _ -> Encode.Min_max_util
    | _ -> Encode.Feasible
  in
  let solve lazy_mode =
    let options = { Encode.default_options with Encode.lazy_mode } in
    Allocator.solve ~options ~fallback:false problem objective
  in
  let eager = solve false and lzy = solve true in
  let verdict = function
    | Allocator.Solved _ -> "SOLVED"
    | Allocator.Infeasible -> "INFEASIBLE"
    | Allocator.Unknown -> "UNKNOWN"
  in
  let sat = ref 0 and unsat = ref 0 and unknown = ref 0 in
  let eager_vars = ref 0 and lazy_vars = ref 0 in
  (match (eager, lzy) with
  | Allocator.Solved e, Allocator.Solved l ->
    incr sat;
    eager_vars := e.Allocator.bool_vars;
    lazy_vars := l.Allocator.bool_vars;
    if e.Allocator.cost <> l.Allocator.cost then
      failf "optimum mismatch: eager cost %d, lazy cost %d" e.Allocator.cost
        l.Allocator.cost;
    if l.Allocator.violations <> [] then
      failf "lazy allocation rejected by the analytical checker";
    if e.Allocator.violations <> [] then
      failf "eager allocation rejected by the analytical checker"
  | Allocator.Infeasible, Allocator.Infeasible -> incr unsat
  | Allocator.Unknown, _ | _, Allocator.Unknown ->
    incr unknown;
    failf "unbudgeted solve returned UNKNOWN (eager=%s lazy=%s)"
      (verdict eager) (verdict lzy)
  | _ ->
    failf "verdict mismatch: eager=%s lazy=%s" (verdict eager) (verdict lzy));
  {
    l_iters = 1;
    l_sat = !sat;
    l_unsat = !unsat;
    l_unknown = !unknown;
    l_eager_vars = !eager_vars;
    l_lazy_vars = !lazy_vars;
    l_failures = List.rev !fail;
  }

let merge_lazy a b =
  {
    l_iters = a.l_iters + b.l_iters;
    l_sat = a.l_sat + b.l_sat;
    l_unsat = a.l_unsat + b.l_unsat;
    l_unknown = a.l_unknown + b.l_unknown;
    l_eager_vars = a.l_eager_vars + b.l_eager_vars;
    l_lazy_vars = a.l_lazy_vars + b.l_lazy_vars;
    l_failures = a.l_failures @ b.l_failures;
  }

let empty_lazy_report =
  {
    l_iters = 0;
    l_sat = 0;
    l_unsat = 0;
    l_unknown = 0;
    l_eager_vars = 0;
    l_lazy_vars = 0;
    l_failures = [];
  }

let run_lazy ?(jobs = 1) ?(log = ignore) ~iters ~seed () =
  let results =
    if jobs <= 1 then List.init iters (lazy_iter ~seed)
    else begin
      let chunks = Array.make (max 1 jobs) [] in
      for i = iters - 1 downto 0 do
        chunks.(i mod Array.length chunks) <- i :: chunks.(i mod Array.length chunks)
      done;
      Array.to_list chunks
      |> List.map (fun idxs ->
             Domain.spawn (fun () -> List.map (lazy_iter ~seed) idxs))
      |> List.concat_map Domain.join
    end
  in
  let report = List.fold_left merge_lazy empty_lazy_report results in
  List.iter log report.l_failures;
  report

let pp_lazy_report ppf r =
  Fmt.pf ppf
    "%d lazy-vs-eager cases: %d solved, %d infeasible, %d unknown, %d failures@."
    r.l_iters r.l_sat r.l_unsat r.l_unknown
    (List.length r.l_failures);
  if r.l_eager_vars > 0 then
    Fmt.pf ppf "final formula vars (solved cases): eager %d, lazy %d (%.2fx)@."
      r.l_eager_vars r.l_lazy_vars
      (float_of_int r.l_eager_vars /. float_of_int (max 1 r.l_lazy_vars));
  List.iter (fun f -> Fmt.pf ppf "FAILURE: %s@." f) r.l_failures

(* -- inprocessing differential campaigns -------------------------------- *)

type inprocess_report = {
  i_iters : int;
  i_sat : int;
  i_unsat : int;
  i_certified : int;
  i_alloc_solved : int;
  i_alloc_infeasible : int;
  i_failures : string list;
}

let result_name = function
  | Solver.Sat -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

(* One iteration runs the differential at both ends of the stack: a raw
   CNF/PB case solved with and without the passes (certifying the
   inprocessed Unsat trace — vivification, subsumption and BVE all log
   their derived clauses, so the DRUP pipeline must still close), and a
   full allocation problem solved through encoder and optimizer both
   ways (the selector literals the session assumes are frozen against
   elimination; a verdict or optimum divergence would expose a BVE
   soundness hole no SAT-level case can see). *)
let inprocess_iter ~max_vars ~seed i =
  let rng = Rng.create (seed lxor (i * 0x2545F491)) in
  let fail = ref [] in
  let failf fmt =
    Fmt.kstr (fun m -> fail := Fmt.str "iter %d: %s" i m :: !fail) fmt
  in
  let sat = ref 0 and unsat = ref 0 and certified = ref 0 in
  let solved = ref 0 and infeasible = ref 0 in
  let case_seed = Rng.int rng 0x3FFFFFFF in
  let case = gen_case ~seed:case_seed ~max_vars in
  let s0, _ = load case in
  let r0 = Solver.solve s0 in
  let s1, trace = load case in
  (* an aggressive cadence so even these tiny instances re-enter the
     passes between restart episodes, not just the preprocessing shot *)
  Inprocess.install ~every:32 s1;
  let r1 = Solver.solve s1 in
  (match (r0, r1) with
  | Solver.Sat, Solver.Sat ->
    incr sat;
    if not (eval case (model_mask case s1)) then
      failf "case seed %d: inprocessed Sat model does not satisfy the instance"
        case_seed
  | Solver.Unsat, Solver.Unsat -> (
    incr unsat;
    let cnf, pbs = checker_view case in
    match Proof.verify ~pbs cnf (trace ()) with
    | Proof.Valid -> incr certified
    | Proof.Invalid { step; reason } ->
      failf "case seed %d: inprocessed Unsat proof rejected at step %d: %s"
        case_seed step reason)
  | a, b ->
    failf "case seed %d: verdict mismatch: plain=%s inprocessed=%s" case_seed
      (result_name a) (result_name b));
  let problem, kind = gen_lazy_problem rng in
  let objective =
    match (Rng.int rng 3, kind) with
    | 0, Model.Tdma -> Encode.Min_trt 0
    | 1, _ -> Encode.Min_max_util
    | _ -> Encode.Feasible
  in
  let solve inprocess =
    let options =
      { Encode.default_options with Encode.inprocess = Some inprocess }
    in
    Allocator.solve ~options ~fallback:false problem objective
  in
  let plain = solve false and inpro = solve true in
  let verdict = function
    | Allocator.Solved _ -> "SOLVED"
    | Allocator.Infeasible -> "INFEASIBLE"
    | Allocator.Unknown -> "UNKNOWN"
  in
  (match (plain, inpro) with
  | Allocator.Solved p, Allocator.Solved q ->
    incr solved;
    if p.Allocator.cost <> q.Allocator.cost then
      failf "allocation optimum mismatch: plain %d, inprocessed %d"
        p.Allocator.cost q.Allocator.cost;
    if q.Allocator.violations <> [] then
      failf "inprocessed allocation rejected by the analytical checker"
  | Allocator.Infeasible, Allocator.Infeasible -> incr infeasible
  | a, b ->
    failf "allocation verdict mismatch: plain=%s inprocessed=%s" (verdict a)
      (verdict b));
  {
    i_iters = 1;
    i_sat = !sat;
    i_unsat = !unsat;
    i_certified = !certified;
    i_alloc_solved = !solved;
    i_alloc_infeasible = !infeasible;
    i_failures = List.rev !fail;
  }

let merge_inprocess a b =
  {
    i_iters = a.i_iters + b.i_iters;
    i_sat = a.i_sat + b.i_sat;
    i_unsat = a.i_unsat + b.i_unsat;
    i_certified = a.i_certified + b.i_certified;
    i_alloc_solved = a.i_alloc_solved + b.i_alloc_solved;
    i_alloc_infeasible = a.i_alloc_infeasible + b.i_alloc_infeasible;
    i_failures = a.i_failures @ b.i_failures;
  }

let empty_inprocess_report =
  {
    i_iters = 0;
    i_sat = 0;
    i_unsat = 0;
    i_certified = 0;
    i_alloc_solved = 0;
    i_alloc_infeasible = 0;
    i_failures = [];
  }

let run_inprocess ?(max_vars = 10) ?(jobs = 1) ?(log = ignore) ~iters ~seed () =
  let max_vars = min 16 (max 2 max_vars) in
  let results =
    if jobs <= 1 then List.init iters (inprocess_iter ~max_vars ~seed)
    else begin
      let chunks = Array.make (max 1 jobs) [] in
      for i = iters - 1 downto 0 do
        chunks.(i mod Array.length chunks) <- i :: chunks.(i mod Array.length chunks)
      done;
      Array.to_list chunks
      |> List.map (fun idxs ->
             Domain.spawn (fun () ->
                 List.map (inprocess_iter ~max_vars ~seed) idxs))
      |> List.concat_map Domain.join
    end
  in
  let report = List.fold_left merge_inprocess empty_inprocess_report results in
  List.iter log report.i_failures;
  report

let pp_inprocess_report ppf r =
  Fmt.pf ppf
    "%d inprocessing cases: %d sat, %d unsat (%d certified); %d allocations \
     solved, %d infeasible, %d failures@."
    r.i_iters r.i_sat r.i_unsat r.i_certified r.i_alloc_solved
    r.i_alloc_infeasible
    (List.length r.i_failures);
  List.iter (fun f -> Fmt.pf ppf "FAILURE: %s@." f) r.i_failures
