(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)

val get : int -> int
(** [get i] is the i-th element (0-based).  The solver restarts after
    [base * get i] conflicts in its i-th episode. *)
