(** Human-readable allocation reports, derived entirely from the
    independent analysis of [taskalloc_rt]: placement with per-ECU
    utilization and memory, per-task response times, message routes and
    latencies, per-medium rounds/loads, and the minimum slack. *)

open Taskalloc_rt

type t

val make : Model.problem -> Model.allocation -> t

val min_slack_percent : t -> int option
(** Smallest relative slack (percent of the deadline budget) over all
    tasks and messages; negative when something misses, [None] when the
    problem has neither tasks nor bounded messages. *)

val pp : Format.formatter -> t -> unit
