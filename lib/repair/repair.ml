(* Online reallocation under disruption (ROADMAP item 4).

   The repair engine keeps one grouped-encoding session alive across
   disruptions (the machinery of [Explain.Session]) and treats every
   repair as an assumption-only optimization on it:

   - the *migration objective* is a sum of indicator bits, one per
     task whose pre-disruption seat is still admissible: the bit is 1
     exactly when the task's placement selector for its old seat is
     false.  [Opt.minimize ~mode:Incremental ~persist_bounds:false]
     binary-searches that sum under the group selectors (and any
     standing event assumptions), so every learnt clause keeps pruning
     later probes while nothing event-specific is ever asserted
     permanently — the session stays sound for the next disruption;

   - ECU failures that doom no task never re-encode: the failure is
     the standing assumption set {not sel(t, failed) | t}, so the warm
     path costs zero encodes (the >= 2x win of BENCH_repair);

   - when the disrupted problem is infeasible, the degradation ladder
     sheds tasks of criticality below the highest level present —
     lowest criticality first, highest utilization within a level (the
     fewest sheds that relieve the bottleneck) — re-encoding the
     reduced problem per rung until the HI tasks fit;

   - attribution reuses the explainer verbatim: pinning a migrated
     task back on its old seat and shrinking the failed-assumption
     core yields a MUS *under the pin*, i.e. the constraint groups
     that forced that migration.

   State commits are all-or-nothing: [Unknown] (budget tripped) and
   [Irreparable] leave problem, allocation and session untouched. *)

open Taskalloc_sat
open Taskalloc_pb
open Taskalloc_bv
open Taskalloc_rt
open Taskalloc_core
module Explain = Taskalloc_explain.Explain
module Session = Explain.Session
module Opt = Taskalloc_opt.Opt
module Budget = Taskalloc_sat.Budget
module Obs = Taskalloc_obs.Obs

type event =
  | Ecu_failure of { ecu : int }
  | Wcet_overrun of { task : int; percent : int }
  | Task_arrival of {
      name : string;
      period : int;
      deadline : int;
      memory : int;
      criticality : int;
      wcets : (int * int) list;
    }
  | Bus_degradation of { medium : int; percent : int }

exception Invalid_event of string

let invalid_event fmt = Fmt.kstr (fun s -> raise (Invalid_event s)) fmt

let pp_event problem ppf = function
  | Ecu_failure { ecu } -> Fmt.pf ppf "ECU%d fails" ecu
  | Wcet_overrun { task; percent } ->
    let name =
      if task >= 0 && task < Array.length problem.Model.tasks then
        problem.Model.tasks.(task).Model.task_name
      else string_of_int task
    in
    Fmt.pf ppf "WCET of %s overruns to %d%%" name percent
  | Task_arrival { name; period; deadline; _ } ->
    Fmt.pf ppf "task %s arrives (t=%d d=%d)" name period deadline
  | Bus_degradation { medium; percent } ->
    let mname =
      match List.nth_opt problem.Model.arch.Model.media medium with
      | Some m -> m.Model.med_name
      | None -> string_of_int medium
    in
    Fmt.pf ppf "bus %s degrades to %d%%" mname percent

(* round [v * percent / 100] up, never below 1 *)
let scale_pct v percent = max 1 (((v * percent) + 99) / 100)

(* -- model-level event application -------------------------------------- *)

(* The raw transformation may leave tasks without any admissible seat
   (all WCET entries barred or scaled beyond the deadline); those are
   detected as doomed and removed by [restrict] before the problem is
   re-validated, because a seatless task has no allocation at all. *)
let disrupt (p : Model.problem) event =
  let arch = p.Model.arch in
  let tasks = Array.copy p.Model.tasks in
  match event with
  | Ecu_failure { ecu } ->
    if ecu < 0 || ecu >= arch.Model.n_ecus then invalid_event "unknown ECU %d" ecu;
    if List.mem ecu arch.Model.barred then
      invalid_event "ECU %d is already failed or barred" ecu;
    ( { arch with Model.barred = List.sort_uniq Int.compare (ecu :: arch.Model.barred) },
      tasks )
  | Wcet_overrun { task; percent } ->
    if task < 0 || task >= Array.length tasks then invalid_event "unknown task %d" task;
    if percent <= 0 then invalid_event "WCET overrun factor must be positive";
    let tk = tasks.(task) in
    let wcets =
      List.filter_map
        (fun (e, w) ->
          let w' = scale_pct w percent in
          if w' > tk.Model.deadline then None else Some (e, w'))
        tk.Model.wcets
    in
    tasks.(task) <- { tk with Model.wcets };
    (arch, tasks)
  | Task_arrival { name; period; deadline; memory; criticality; wcets } ->
    if period <= 0 then invalid_event "arrival %s: period must be positive" name;
    if deadline <= 0 then invalid_event "arrival %s: deadline must be positive" name;
    if memory < 0 then invalid_event "arrival %s: negative memory" name;
    if criticality < 0 then invalid_event "arrival %s: negative criticality" name;
    if Array.exists (fun t -> t.Model.task_name = name) tasks then
      invalid_event "arrival %s: a task of that name is already running" name;
    let wcets =
      List.filter_map
        (fun (e, w) ->
          if e < 0 || e >= arch.Model.n_ecus then
            invalid_event "arrival %s: unknown ECU %d" name e;
          if w <= 0 then invalid_event "arrival %s: WCET must be positive" name;
          if w > deadline then None else Some (e, w))
        wcets
    in
    let tk =
      {
        Model.task_id = Array.length tasks;
        task_name = name;
        period;
        wcets;
        deadline;
        memory;
        separation = [];
        messages = [];
        jitter = 0;
        blocking = 0;
        criticality;
      }
    in
    (arch, Array.append tasks [| tk |])
  | Bus_degradation { medium; percent } ->
    if percent <= 0 then invalid_event "bus degradation factor must be positive";
    if medium < 0 || medium >= List.length arch.Model.media then
      invalid_event "unknown medium %d" medium;
    let media =
      List.map
        (fun (m : Model.medium) ->
          if m.Model.med_id = medium then
            { m with Model.byte_time = scale_pct m.Model.byte_time percent }
          else m)
        arch.Model.media
    in
    ({ arch with Model.media }, tasks)

(* a task is doomed when no WCET entry survives outside the barred set *)
let doomed_of arch tasks =
  Array.to_list tasks
  |> List.filter_map (fun tk ->
         if
           List.exists
             (fun (e, _) -> not (List.mem e arch.Model.barred))
             tk.Model.wcets
         then None
         else Some tk.Model.task_id)

(* Rebuild a valid problem from the surviving tasks, renumbered
   densely.  Separation peers and messages to dropped tasks vanish;
   message ids are re-assigned in task order (keeping them dense).
   Returns the problem and [kept]: new id -> raw id. *)
let restrict ~arch (raw : Model.task array) ~drop =
  let n = Array.length raw in
  let kept =
    Array.of_list
      (List.filter (fun i -> not (List.mem i drop)) (List.init n Fun.id))
  in
  let new_id = Array.make n (-1) in
  Array.iteri (fun ni oi -> new_id.(oi) <- ni) kept;
  let next_msg = ref 0 in
  let tasks =
    Array.to_list
      (Array.mapi
         (fun ni oi ->
           let tk = raw.(oi) in
           {
             tk with
             Model.task_id = ni;
             separation =
               List.filter_map
                 (fun p -> if new_id.(p) >= 0 then Some new_id.(p) else None)
                 tk.Model.separation;
             messages =
               List.filter_map
                 (fun (m : Model.message) ->
                   if new_id.(m.Model.dst) >= 0 then begin
                     let id = !next_msg in
                     incr next_msg;
                     Some { m with Model.msg_id = id; src = ni; dst = new_id.(m.Model.dst) }
                   end
                   else None)
                 tk.Model.messages;
           })
         kept)
  in
  (Model.make_problem ~arch ~tasks, kept)

type disrupted = {
  d_problem : Model.problem;
  d_kept : int array;
  d_doomed : int list;
}

let apply_event problem event =
  let arch, raw = disrupt problem event in
  let doomed = doomed_of arch raw in
  let d_problem, d_kept = restrict ~arch raw ~drop:doomed in
  { d_problem; d_kept; d_doomed = doomed }

(* -- results ------------------------------------------------------------ *)

type migration = {
  m_task : string;
  m_from : int;
  m_to : int;
  m_forced : bool;
  m_because : Encode.group list;
}

type shed = {
  s_task : string;
  s_criticality : int;
  s_because : Encode.group list;
}

type repair = {
  problem : Model.problem;
  allocation : Model.allocation;
  migrations : migration list;
  sheds : shed list;
  degraded : bool;
  warm : bool;
  optimal : bool;
  solves : int;
  check_violations : int;
  sim_misses : int;
  time_s : float;
}

type outcome =
  | Repaired of repair
  | Irreparable of { core : Encode.group list; why : string }
  | Unknown

let pp_outcome _problem ppf = function
  | Unknown -> Fmt.pf ppf "UNKNOWN: budget exhausted; keeping the old allocation"
  | Irreparable { core; why } ->
    Fmt.pf ppf "IRREPARABLE: %s" why;
    List.iter (fun g -> Fmt.pf ppf "@\n  - %s" g.Encode.descr) core
  | Repaired r ->
    Fmt.pf ppf "REPAIRED%s%s: %d migration%s, %d shed%s (%d solves, %.2fs%s)"
      (if r.degraded then " DEGRADED" else "")
      (if r.warm then " [warm]" else "")
      (List.length r.migrations)
      (if List.length r.migrations = 1 then "" else "s")
      (List.length r.sheds)
      (if List.length r.sheds = 1 then "" else "s")
      r.solves r.time_s
      (if r.optimal then "" else ", not proven minimal");
    List.iter
      (fun m ->
        Fmt.pf ppf "@\n  move %s: ECU%d -> ECU%d%s" m.m_task m.m_from m.m_to
          (if m.m_forced then " (forced)" else "");
        List.iter (fun g -> Fmt.pf ppf "@\n    because %s" g.Encode.descr) m.m_because)
      r.migrations;
    List.iter
      (fun s ->
        Fmt.pf ppf "@\n  shed %s (criticality %d)" s.s_task s.s_criticality;
        List.iter (fun g -> Fmt.pf ppf "@\n    because %s" g.Encode.descr) s.s_because)
      r.sheds;
    if r.sim_misses >= 0 then
      Fmt.pf ppf "@\n  validated: %d analyzer violations, %d simulated misses"
        r.check_violations r.sim_misses

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let group_json g =
  Printf.sprintf "{\"id\":\"%s\",\"descr\":\"%s\"}"
    (json_escape (Encode.group_id g))
    (json_escape g.Encode.descr)

let groups_json gs = String.concat "," (List.map group_json gs)

let outcome_to_json = function
  | Unknown -> "{\"status\":\"unknown\"}"
  | Irreparable { core; why } ->
    Printf.sprintf "{\"status\":\"irreparable\",\"why\":\"%s\",\"core\":[%s]}"
      (json_escape why) (groups_json core)
  | Repaired r ->
    let migrations =
      List.map
        (fun m ->
          Printf.sprintf
            "{\"task\":\"%s\",\"from\":%d,\"to\":%d,\"forced\":%b,\"because\":[%s]}"
            (json_escape m.m_task) m.m_from m.m_to m.m_forced
            (groups_json m.m_because))
        r.migrations
    in
    let sheds =
      List.map
        (fun s ->
          Printf.sprintf
            "{\"task\":\"%s\",\"criticality\":%d,\"because\":[%s]}"
            (json_escape s.s_task) s.s_criticality (groups_json s.s_because))
        r.sheds
    in
    let placement =
      Array.to_list r.allocation.Model.task_ecu
      |> List.mapi (fun i e ->
             Printf.sprintf "[\"%s\",%d]"
               (json_escape r.problem.Model.tasks.(i).Model.task_name)
               e)
    in
    Printf.sprintf
      "{\"status\":\"repaired\",\"degraded\":%b,\"warm\":%b,\"optimal\":%b,\
       \"migrations\":[%s],\"sheds\":[%s],\"placement\":[%s],\"solves\":%d,\
       \"check_violations\":%d,\"sim_misses\":%d,\"time_s\":%.6f}"
      r.degraded r.warm r.optimal
      (String.concat "," migrations)
      (String.concat "," sheds)
      (String.concat "," placement)
      r.solves r.check_violations r.sim_misses r.time_s

(* -- online state ------------------------------------------------------- *)

type t = {
  mutable cur : Model.problem;
  mutable alloc : Model.allocation;
  mutable sess : Session.t;
  mutable sess_extra : Lit.t list;
      (* standing assumptions translating events applied since [sess]
         was last built (only ECU failures accumulate here) *)
  mutable sheds : string list; (* newest first *)
  options : Encode.options option;
}

let create ?options problem allocation =
  if Array.length allocation.Model.task_ecu <> Array.length problem.Model.tasks
  then Model.invalid "repair: allocation does not match the problem";
  {
    cur = problem;
    alloc = allocation;
    sess = Session.create ?options problem;
    sess_extra = [];
    sheds = [];
    options;
  }

let problem t = t.cur
let allocation t = t.alloc
let shed_so_far t = List.rev t.sheds

let find_task t name =
  let found = ref None in
  Array.iteri
    (fun i tk -> if tk.Model.task_name = name then found := Some i)
    t.cur.Model.tasks;
  !found

let find_medium t name =
  List.find_map
    (fun (m : Model.medium) ->
      if m.Model.med_name = name then Some m.Model.med_id else None)
    t.cur.Model.arch.Model.media

(* -- the solve core ----------------------------------------------------- *)

let all_indices sess = List.init (Array.length (Session.groups sess)) Fun.id

let group_assumptions sess =
  Array.to_list (Session.groups sess)
  |> List.map (fun (g : Encode.group) -> g.Encode.selector)

(* Minimal-migration solve on [sess] (encoding the problem being
   repaired) under standing assumptions [extra].  [stay_seat i] is the
   old seat of task [i] when that seat is still admissible.  Returns
   the extracted allocation and whether the migration count is proven
   minimal. *)
let attempt ?budget ~solves sess stay_seat ~n_tasks ~extra =
  let enc = Session.encoding sess in
  let ctx = Encode.context enc in
  let stays =
    List.init n_tasks Fun.id
    |> List.filter_map (fun i ->
           match stay_seat i with
           | None -> None
           | Some e -> (
             match Encode.task_selector enc ~task:i ~ecu:e with
             | Circuits.Lit l -> Some l
             | Circuits.One | Circuits.Zero -> None))
  in
  (* fast path: nobody migrates voluntarily *)
  incr solves;
  match Session.solve ?budget ~extra:(extra @ stays) sess (all_indices sess) with
  | Solver.Sat -> `Sat (Encode.extract enc, true)
  | Solver.Unknown -> `Unknown
  | Solver.Unsat -> (
    let cost =
      Bv.sum ctx
        (List.map
           (fun l -> Bv.ite ctx (Circuits.Lit l) Bv.zero (Bv.const 1))
           stays)
    in
    let assumptions = group_assumptions sess @ extra in
    let anytime, stats =
      Obs.span "repair.minimize" (fun () ->
          Opt.minimize ~mode:Opt.Incremental ~assumptions ~persist_bounds:false
            ~refine:(fun _ -> Encode.Lazy.refine enc)
            ?budget
            ~build:(fun () -> (ctx, cost))
            ~on_sat:(fun _ _ -> Encode.extract enc)
            ())
    in
    solves := !solves + stats.Opt.probes;
    match (anytime.Opt.resolution, anytime.Opt.incumbent) with
    | Opt.Infeasible, _ -> `Infeasible
    | (Opt.Optimal | Opt.Feasible_budget_exhausted), Some (_, alloc) ->
      `Sat (alloc, anytime.Opt.resolution = Opt.Optimal)
    | _ -> `Unknown)

(* groups of the last Unsat answer on [sess], optionally shrunk to a
   MUS under [extra] *)
let last_core ?budget ~shrink sess ~extra =
  let core0 = Session.core_indices sess in
  let core =
    if shrink then fst (Explain.shrink ?budget ~extra ~sessions:[| sess |] core0)
    else core0
  in
  List.map (fun i -> (Session.groups sess).(i)) core

(* Why did task [i] leave seat [e]?  Pin it back: an Unsat answer's
   shrunk core names the forcing groups; Sat means the seat alone was
   fine and the move served the global optimum. *)
let attribute ?budget ~solves ~explain sess ~extra i e =
  if not explain then []
  else
    match Encode.task_selector (Session.encoding sess) ~task:i ~ecu:e with
    | Circuits.Zero | Circuits.One -> []
    | Circuits.Lit l -> (
      incr solves;
      let extra = extra @ [ l ] in
      match Session.solve ?budget ~extra sess (all_indices sess) with
      | Solver.Unsat -> last_core ?budget ~shrink:true sess ~extra
      | Solver.Sat | Solver.Unknown -> [])

let migrations_of ?budget ~solves ~explain sess p ~extra ~old_raw alloc =
  List.init (Array.length p.Model.tasks) Fun.id
  |> List.filter_map (fun i ->
         match old_raw i with
         | None -> None (* arrival: a placement, not a migration *)
         | Some e when alloc.Model.task_ecu.(i) = e -> None
         | Some e ->
           let tk = p.Model.tasks.(i) in
           let forced = not (List.mem e (Model.allowed_ecus p tk)) in
           Some
             {
               m_task = tk.Model.task_name;
               m_from = e;
               m_to = alloc.Model.task_ecu.(i);
               m_forced = forced;
               m_because =
                 (if forced then []
                  else attribute ?budget ~solves ~explain sess ~extra i e);
             })

(* -- repair ------------------------------------------------------------- *)

let validate_repair p alloc =
  let violations = List.length (Check.check p alloc) in
  let trace = Sim.simulate p alloc in
  (violations, List.length trace.Sim.deadline_misses)

let repair ?budget ?(allow_shed = true) ?(explain = false) ?(validate = true) t
    event =
  Obs.span "repair.event" (fun () ->
      let t0 = Unix.gettimeofday () in
      let solves = ref 0 in
      if Obs.metrics_on () then Obs.Metrics.incr "repair.events";
      let { d_problem; d_kept; d_doomed } = apply_event t.cur event in
      let _, raw' = disrupt t.cur event in
      (* highest criticality present in the post-event system defines
         the un-sheddable (HI) level *)
      let max_crit =
        Array.fold_left (fun m tk -> max m tk.Model.criticality) 0 raw'
      in
      let sheddable tk = tk.Model.criticality < max_crit in
      let old_seat_raw raw_id =
        if raw_id < Array.length t.alloc.Model.task_ecu then
          Some t.alloc.Model.task_ecu.(raw_id)
        else None (* an arrival has no old seat *)
      in
      (* name of a raw (pre-restrict) task id *)
      let raw_name i = raw'.(i).Model.task_name in
      let budget_tripped () =
        match budget with None -> false | Some b -> Budget.exhausted b
      in
      let finish ~warm ~sess ~sess_extra ~optimal ~migrations ~sheds p alloc =
        let check_violations, sim_misses =
          if validate then validate_repair p alloc else (0, -1)
        in
        t.cur <- p;
        t.alloc <- alloc;
        t.sess <- sess;
        t.sess_extra <- sess_extra;
        t.sheds <- List.rev_map (fun s -> s.s_task) sheds @ t.sheds;
        if Obs.metrics_on () then begin
          Obs.Metrics.observe "repair.migrations" (List.length migrations);
          Obs.Metrics.observe "repair.sheds" (List.length sheds);
          if warm then Obs.Metrics.incr "repair.warm"
        end;
        Repaired
          {
            problem = p;
            allocation = alloc;
            migrations;
            sheds;
            degraded = sheds <> [];
            warm;
            optimal;
            solves = !solves;
            check_violations;
            sim_misses;
            time_s = Unix.gettimeofday () -. t0;
          }
      in
      (* doomed tasks shed themselves — or sink the repair *)
      let doomed_sheds =
        List.map
          (fun i ->
            {
              s_task = raw_name i;
              s_criticality = raw'.(i).Model.criticality;
              s_because = [];
            })
          d_doomed
      in
      let blocked =
        List.find_opt
          (fun i -> (not allow_shed) || not (sheddable raw'.(i)))
          d_doomed
      in
      match blocked with
      | Some i ->
        Irreparable
          {
            core = [];
            why =
              Printf.sprintf
                "task %s has no admissible ECU left and may not be shed%s"
                (raw_name i)
                (if allow_shed then " (highest criticality)" else "");
          }
      | None -> (
        (* session: warm on a pure ECU failure, rebuilt otherwise *)
        let warm =
          match event with Ecu_failure _ -> d_doomed = [] | _ -> false
        in
        let sess, sess_extra =
          if warm then begin
            let failed =
              match event with Ecu_failure { ecu } -> ecu | _ -> assert false
            in
            let enc = Session.encoding t.sess in
            let forbids =
              List.init (Array.length d_problem.Model.tasks) Fun.id
              |> List.filter_map (fun i ->
                     match Encode.task_selector enc ~task:i ~ecu:failed with
                     | Circuits.Lit l -> Some (Lit.neg l)
                     | Circuits.Zero | Circuits.One -> None)
            in
            (t.sess, t.sess_extra @ forbids)
          end
          else
            ( Obs.span "repair.encode" (fun () ->
                  Session.create ?options:t.options d_problem),
              [] )
        in
        (* stay-pins only for tasks whose old seat is still admissible *)
        let stay_seat i =
          match old_seat_raw d_kept.(i) with
          | Some e
            when List.mem e
                   (Model.allowed_ecus d_problem d_problem.Model.tasks.(i)) ->
            Some e
          | _ -> None
        in
        match
          Obs.span "repair.attempt" (fun () ->
              attempt ?budget ~solves sess stay_seat
                ~n_tasks:(Array.length d_problem.Model.tasks)
                ~extra:sess_extra)
        with
        | `Unknown -> Unknown
        | `Sat (alloc, optimal) ->
          let migrations =
            migrations_of ?budget ~solves ~explain sess d_problem
              ~extra:sess_extra
              ~old_raw:(fun i -> old_seat_raw d_kept.(i))
              alloc
          in
          finish ~warm ~sess ~sess_extra ~optimal ~migrations
            ~sheds:doomed_sheds d_problem alloc
        | `Infeasible -> (
          (* full repair impossible: walk the degradation ladder *)
          let core0 = last_core ?budget ~shrink:explain sess ~extra:sess_extra in
          if not allow_shed then
            Irreparable
              { core = core0; why = "no repair without shedding (disabled)" }
          else begin
            (* candidates in d_problem numbering: lowest criticality
               first, then highest utilization (fewest sheds), then id *)
            let util tk =
              List.fold_left
                (fun m (e, _) ->
                  if List.mem e d_problem.Model.arch.Model.barred then m
                  else max m (Model.wcet_on tk e * 1000 / tk.Model.period))
                0 tk.Model.wcets
            in
            let candidates =
              Array.to_list d_problem.Model.tasks
              |> List.filter sheddable
              |> List.sort (fun a b ->
                     match Int.compare a.Model.criticality b.Model.criticality with
                     | 0 -> (
                       match Int.compare (util b) (util a) with
                       | 0 -> Int.compare a.Model.task_id b.Model.task_id
                       | c -> c)
                     | c -> c)
              |> List.map (fun tk -> tk.Model.task_id)
            in
            let rec ladder shed_ids sheds cands core =
              if budget_tripped () then Unknown
              else
                match cands with
                | [] ->
                  Irreparable
                    {
                      core;
                      why =
                        (if candidates = [] then
                           "infeasible and no task is sheddable (uniform \
                            criticality)"
                         else "infeasible even after shedding every sheddable task");
                    }
                | c :: rest -> (
                  let shed_ids = c :: shed_ids in
                  let sheds =
                    sheds
                    @ [
                        {
                          s_task = d_problem.Model.tasks.(c).Model.task_name;
                          s_criticality =
                            d_problem.Model.tasks.(c).Model.criticality;
                          s_because = core;
                        };
                      ]
                  in
                  let reduced, kept_r =
                    restrict ~arch:d_problem.Model.arch d_problem.Model.tasks
                      ~drop:shed_ids
                  in
                  let rs =
                    Obs.span "repair.encode" (fun () ->
                        Session.create ?options:t.options reduced)
                  in
                  let stay_r j =
                    match old_seat_raw d_kept.(kept_r.(j)) with
                    | Some e
                      when List.mem e
                             (Model.allowed_ecus reduced reduced.Model.tasks.(j))
                      ->
                      Some e
                    | _ -> None
                  in
                  match
                    Obs.span "repair.ladder" (fun () ->
                        attempt ?budget ~solves rs stay_r
                          ~n_tasks:(Array.length reduced.Model.tasks)
                          ~extra:[])
                  with
                  | `Unknown -> Unknown
                  | `Sat (alloc, optimal) ->
                    let migrations =
                      migrations_of ?budget ~solves ~explain rs reduced
                        ~extra:[]
                        ~old_raw:(fun j -> old_seat_raw d_kept.(kept_r.(j)))
                        alloc
                    in
                    finish ~warm:false ~sess:rs ~sess_extra:[] ~optimal
                      ~migrations ~sheds:(doomed_sheds @ sheds) reduced alloc
                  | `Infeasible ->
                    let core' = last_core ?budget ~shrink:explain rs ~extra:[] in
                    ladder shed_ids sheds rest core')
            in
            Obs.span "repair.degrade" (fun () -> ladder [] [] candidates core0)
          end)))
