(* Portfolio determinism, agreement and certification tests.

   The load-bearing property is the jobs=1 contract: a 1-worker
   portfolio must be the sequential solver bit for bit — same answer,
   same conflict/decision/propagation/restart counts — because the
   inline path spawns no domain, derives no budget and applies no
   config.  Parallel runs cannot be compared to a golden trace (domain
   interleaving is nondeterministic), so for jobs > 1 we check
   invariants instead: agreement with the sequential answer on
   satisfiability, agreement on the optimum for minimization, and a
   machine-checked DRUP certificate from the winning worker. *)

module Solver = Taskalloc_sat.Solver
module Lit = Taskalloc_sat.Lit
module Dimacs = Taskalloc_sat.Dimacs
module Proof = Taskalloc_proof.Proof
module Fuzz = Taskalloc_fuzz.Fuzz
module Portfolio = Taskalloc_portfolio.Portfolio
module Bv = Taskalloc_bv.Bv
module Opt = Taskalloc_opt.Opt

(* load a DIMACS cnf into a fresh solver *)
let load_cnf (cnf : Dimacs.cnf) =
  let s = Solver.create () in
  let vars = Array.init cnf.Dimacs.num_vars (fun _ -> Solver.new_var s) in
  List.iter
    (fun clause ->
      Solver.add_clause s
        (List.map
           (fun l -> Lit.of_var ~sign:(l > 0) vars.(abs l - 1))
           clause))
    cnf.Dimacs.clauses;
  s

let result_str = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

(* -- jobs=1 is the sequential solver, bit for bit ---------------------- *)

let test_jobs1_bit_for_bit () =
  for seed = 0 to 24 do
    let cnf = Fuzz.gen_cnf ~seed ~max_vars:12 in
    (* reference: plain sequential solve *)
    let s_ref = load_cnf cnf in
    let r_ref = Solver.solve s_ref in
    (* 1-worker portfolio on an identical solver *)
    let o = Portfolio.solve ~jobs:1 ~build:(fun _ -> ((), load_cnf cnf)) () in
    let label = Printf.sprintf "seed %d" seed in
    Alcotest.(check string)
      (label ^ ": same answer")
      (result_str r_ref)
      (result_str o.Portfolio.result);
    Alcotest.(check int) (label ^ ": winner is worker 0") 0 o.Portfolio.winner;
    let st = o.Portfolio.workers.(0) in
    Alcotest.(check int) (label ^ ": conflicts") (Solver.n_conflicts s_ref)
      st.Portfolio.conflicts;
    Alcotest.(check int) (label ^ ": decisions") (Solver.n_decisions s_ref)
      st.Portfolio.decisions;
    Alcotest.(check int) (label ^ ": propagations")
      (Solver.n_propagations s_ref) st.Portfolio.propagations;
    Alcotest.(check int) (label ^ ": restarts") (Solver.n_restarts s_ref)
      st.Portfolio.restarts;
    Alcotest.(check int) (label ^ ": learnt total")
      (Solver.n_learnt_total s_ref) st.Portfolio.learnt_total;
    Alcotest.(check int) (label ^ ": nothing shared") 0
      (st.Portfolio.shared_out + st.Portfolio.shared_in)
  done

(* -- jobs>1 agrees with the oracle ------------------------------------- *)

let test_parallel_agreement () =
  for seed = 0 to 11 do
    let cnf = Fuzz.gen_cnf ~seed:(100 + seed) ~max_vars:12 in
    let expected = Fuzz.oracle (Fuzz.Cnf cnf) in
    let o = Portfolio.solve ~jobs:3 ~build:(fun _ -> ((), load_cnf cnf)) () in
    let label = Printf.sprintf "seed %d" (100 + seed) in
    Alcotest.(check string)
      (label ^ ": portfolio agrees with oracle")
      (if expected then "sat" else "unsat")
      (result_str o.Portfolio.result);
    Alcotest.(check bool) (label ^ ": someone won") true (o.Portfolio.winner >= 0)
  done

(* -- parallel Unsat answers carry a checkable certificate --------------- *)

let test_parallel_proof_verifies () =
  let n_unsat = ref 0 in
  let seed = ref 200 in
  (* hunt unsat instances until we have certified a few in parallel mode *)
  while !n_unsat < 5 && !seed < 260 do
    let cnf = Fuzz.gen_cnf ~seed:!seed ~max_vars:11 in
    incr seed;
    if not (Fuzz.oracle (Fuzz.Cnf cnf)) then begin
      incr n_unsat;
      let o =
        Portfolio.solve ~jobs:3
          ~build:(fun _ ->
            let s = load_cnf cnf in
            (* recording sink installed after load: level-0 refutations
               during add_clause are exercised by the fuzz layer; here
               all instances survive loading *)
            let trace = Proof.record s in
            (trace, s))
          ()
      in
      let label = Printf.sprintf "seed %d" (!seed - 1) in
      Alcotest.(check string) (label ^ ": unsat") "unsat"
        (result_str o.Portfolio.result);
      match o.Portfolio.payload with
      | None -> Alcotest.fail (label ^ ": winner has no payload")
      | Some trace ->
        Alcotest.(check bool)
          (label ^ ": winner's DRUP trace verifies")
          true
          (Proof.check cnf (trace ()))
    end
  done;
  Alcotest.(check bool) "found unsat instances to certify" true (!n_unsat >= 5)

(* -- optimizer portfolio: same optimum, sequential and parallel --------- *)

(* minimize the number of true variables among the first [k] of a random
   3-SAT formula — probes are refutation-heavy, touching the same code
   paths the bench exercises at scale *)
let minvars_build ~seed ~n ~k () =
  let cnf = Fuzz.gen_cnf ~seed ~max_vars:n in
  fun () ->
    let ctx = Bv.create () in
    let s = Bv.solver ctx in
    let vars = Array.init cnf.Dimacs.num_vars (fun _ -> Solver.new_var s) in
    List.iter
      (fun clause ->
        Solver.add_clause s
          (List.map
             (fun l -> Lit.of_var ~sign:(l > 0) vars.(abs l - 1))
             clause))
      cnf.Dimacs.clauses;
    let k = min k (Array.length vars) in
    let cost =
      Bv.sum ctx
        (List.init k (fun i ->
             Bv.ite ctx
               (Taskalloc_pb.Circuits.of_lit (Lit.of_var vars.(i)))
               (Bv.const 1) Bv.zero))
    in
    (ctx, cost)

let test_opt_portfolio_agreement () =
  let checked = ref 0 in
  for seed = 300 to 311 do
    let build = minvars_build ~seed ~n:12 ~k:8 () in
    let run jobs =
      let any, _ = Opt.minimize ~jobs ~build ~on_sat:(fun _ c -> c) () in
      any
    in
    let seq = run 1 in
    let par = run 4 in
    let label = Printf.sprintf "seed %d" seed in
    match (seq.Opt.resolution, par.Opt.resolution) with
    | Opt.Optimal, Opt.Optimal ->
      incr checked;
      let cost a =
        match a.Opt.incumbent with Some (c, _) -> c | None -> -1
      in
      Alcotest.(check int) (label ^ ": same optimum") (cost seq) (cost par)
    | Opt.Infeasible, Opt.Infeasible -> incr checked
    | a, b ->
      Alcotest.failf "%s: resolutions disagree (%s vs %s)" label
        (Fmt.str "%a" Opt.pp_resolution a)
        (Fmt.str "%a" Opt.pp_resolution b)
  done;
  Alcotest.(check bool) "exercised several instances" true (!checked >= 8)

(* cube-partitioned minimization finds the same optimum as sequential;
   splitting on the cost-relevant variables stresses the shared
   incumbent + bound-pruning path *)
let test_opt_cubes_agreement () =
  let checked = ref 0 in
  for seed = 500 to 509 do
    let build = minvars_build ~seed ~n:12 ~k:8 () in
    let seq, _ = Opt.minimize ~jobs:1 ~build ~on_sat:(fun _ c -> c) () in
    let cub, _ =
      Opt.minimize ~jobs:2 ~parallel:`Cubes
        ~split_vars:(List.init 8 Fun.id)
        ~build ~on_sat:(fun _ c -> c) ()
    in
    let label = Printf.sprintf "seed %d" seed in
    match (seq.Opt.resolution, cub.Opt.resolution) with
    | Opt.Optimal, Opt.Optimal ->
      incr checked;
      let cost a = match a.Opt.incumbent with Some (c, _) -> c | None -> -1 in
      Alcotest.(check int) (label ^ ": same optimum") (cost seq) (cost cub)
    | Opt.Infeasible, Opt.Infeasible -> incr checked
    | a, b ->
      Alcotest.failf "%s: resolutions disagree (%s vs %s)" label
        (Fmt.str "%a" Opt.pp_resolution a)
        (Fmt.str "%a" Opt.pp_resolution b)
  done;
  Alcotest.(check bool) "exercised several instances" true (!checked >= 8)

(* -- shared clauses actually flow (and stay sound) ---------------------- *)

let test_sharing_flows () =
  (* a pigeonhole instance is small, unsat, and conflict-rich enough
     that every worker learns plenty of low-LBD clauses *)
  let build_php () =
    let s = Solver.create () in
    let n = 7 in
    let x = Array.init n (fun _ -> Array.init (n - 1) (fun _ -> Solver.new_var s)) in
    for p = 0 to n - 1 do
      Solver.add_clause s (List.init (n - 1) (fun h -> Lit.of_var x.(p).(h)))
    done;
    for h = 0 to n - 2 do
      Solver.add_at_most_one s (List.init n (fun p -> Lit.of_var x.(p).(h)))
    done;
    s
  in
  let o = Portfolio.solve ~jobs:3 ~build:(fun _ -> ((), build_php ())) () in
  Alcotest.(check string) "php unsat" "unsat" (result_str o.Portfolio.result);
  let out =
    Array.fold_left (fun a w -> a + w.Portfolio.shared_out) 0 o.Portfolio.workers
  in
  Alcotest.(check bool) "clauses were exported" true (out > 0)

(* -- race chaos: budget expiry vs cancellation -------------------------- *)

(* Trip the race's parent budget at the nth coordinator poll and check
   the portfolio unwinds to a clean, resumable Unknown (or a sound
   answer if a worker finished first) at every injection point.  This
   is the parallel counterpart of test_chaos's sequential sweeps. *)
let test_portfolio_chaos () =
  let cnf = Fuzz.gen_cnf ~seed:7 ~max_vars:14 in
  let expected = Fuzz.oracle (Fuzz.Cnf cnf) in
  for n = 1 to 20 do
    let polls = ref 0 in
    let budget =
      Taskalloc_sat.Budget.create ~check_every:1
        ~should_stop:(fun () ->
          incr polls;
          !polls >= n)
        ()
    in
    let label = Printf.sprintf "chaos N=%d" n in
    match
      Portfolio.solve ~jobs:3 ~budget ~build:(fun _ -> ((), load_cnf cnf)) ()
    with
    | o -> (
      match o.Portfolio.result with
      | Solver.Unknown ->
        (* clean pause: no winner, but every worker reported stats *)
        Alcotest.(check int) (label ^ ": no winner") (-1) o.Portfolio.winner;
        Alcotest.(check int)
          (label ^ ": all workers reported")
          3
          (Array.length o.Portfolio.workers)
      | Solver.Sat ->
        Alcotest.(check bool) (label ^ ": sat only if truly sat") true expected
      | Solver.Unsat ->
        Alcotest.(check bool) (label ^ ": unsat only if truly unsat") true
          (not expected))
    | exception e ->
      Alcotest.failf "%s: escaped exception %s" label (Printexc.to_string e)
  done

(* -- cube-and-conquer --------------------------------------------------- *)

(* like [load_cnf], but the proof sink (when given) is installed before
   any clause is added, as the solve_cubes builder contract requires *)
let load_cnf_with ~proof (cnf : Dimacs.cnf) =
  let s = Solver.create () in
  Solver.set_proof_sink s proof;
  let vars = Array.init cnf.Dimacs.num_vars (fun _ -> Solver.new_var s) in
  List.iter
    (fun clause ->
      Solver.add_clause s
        (List.map
           (fun l -> Lit.of_var ~sign:(l > 0) vars.(abs l - 1))
           clause))
    cnf.Dimacs.clauses;
  s

(* cube mode agrees with the oracle, with and without domains; on Sat
   the winning payload's model satisfies the formula; a forced split
   (presolve too short to decide) exercises the real cube machinery *)
let test_cubes_agreement () =
  let cubed = ref 0 in
  for seed = 300 to 315 do
    let cnf = Fuzz.gen_cnf ~seed ~max_vars:12 in
    let expected = Fuzz.oracle (Fuzz.Cnf cnf) in
    List.iter
      (fun jobs ->
        let o =
          Portfolio.solve_cubes ~jobs ~presolve_conflicts:0
            ~build:(fun ~proof _ ->
              let s = load_cnf_with ~proof cnf in
              (s, s))
            ()
        in
        let label = Printf.sprintf "seed %d jobs %d" seed jobs in
        Alcotest.(check string)
          (label ^ ": cubes agree with oracle")
          (if expected then "sat" else "unsat")
          (result_str o.Portfolio.c_result);
        if o.Portfolio.n_cubes > 0 then incr cubed;
        (match o.Portfolio.c_result with
        | Solver.Sat -> (
          match o.Portfolio.c_payload with
          | None -> Alcotest.fail (label ^ ": sat but no payload")
          | Some s ->
            let ok =
              List.for_all
                (fun clause ->
                  List.exists
                    (fun l ->
                      Solver.model_value s
                        (Lit.of_var ~sign:(l > 0) (abs l - 1)))
                    clause)
                cnf.Dimacs.clauses
            in
            Alcotest.(check bool) (label ^ ": model satisfies cnf") true ok)
        | _ -> ());
        if o.Portfolio.c_result = Solver.Unsat then
          Alcotest.(check int)
            (label ^ ": all cubes refuted")
            o.Portfolio.n_cubes o.Portfolio.unsat_cubes)
      [ 1; 2 ]
  done;
  Alcotest.(check bool) "some instances actually split" true (!cubed > 0)

(* Unsat cube runs stitch a DRUP trace the independent checker accepts *)
let test_cubes_proof_stitched () =
  let n_unsat = ref 0 and n_cubed = ref 0 in
  let seed = ref 400 in
  while !n_unsat < 5 && !seed < 460 do
    let cnf = Fuzz.gen_cnf ~seed:!seed ~max_vars:11 in
    incr seed;
    if not (Fuzz.oracle (Fuzz.Cnf cnf)) then begin
      incr n_unsat;
      let steps = ref [] in
      let sink st = steps := Proof.of_solver_step st :: !steps in
      let o =
        Portfolio.solve_cubes ~jobs:2 ~presolve_conflicts:0 ~proof:sink
          ~build:(fun ~proof _ -> ((), load_cnf_with ~proof cnf))
          ()
      in
      let label = Printf.sprintf "seed %d" (!seed - 1) in
      Alcotest.(check string) (label ^ ": unsat") "unsat"
        (result_str o.Portfolio.c_result);
      if o.Portfolio.n_cubes > 0 then incr n_cubed;
      Alcotest.(check bool)
        (label ^ ": stitched DRUP trace verifies")
        true
        (Proof.check cnf (List.rev !steps))
    end
  done;
  ignore !n_cubed;
  Alcotest.(check bool) "found unsat instances to certify" true (!n_unsat >= 5)

(* Random unsat instances are refuted by the splitter's own lookahead;
   pigeonhole resists failed-literal probing entirely, so this pins
   down the genuinely-cubed Unsat path: per-cube refutations plus the
   merge tree, accepted by the independent checker. *)
let test_cubes_php_proof () =
  let n = 6 in
  (* pigeon p in hole h is DIMACS variable p*(n-1)+h+1; pairwise AMO *)
  let v p h = (p * (n - 1)) + h + 1 in
  let pigeon = List.init n (fun p -> List.init (n - 1) (fun h -> v p h)) in
  let amo =
    List.concat
      (List.init (n - 1) (fun h ->
           List.concat
             (List.init n (fun p1 ->
                  List.filteri (fun p2 _ -> p2 > p1) (List.init n Fun.id)
                  |> List.map (fun p2 -> [ -v p1 h; -v p2 h ])))))
  in
  let cnf = { Dimacs.num_vars = n * (n - 1); clauses = pigeon @ amo } in
  let steps = ref [] in
  let sink st = steps := Proof.of_solver_step st :: !steps in
  let o =
    Portfolio.solve_cubes ~jobs:2 ~presolve_conflicts:0 ~proof:sink
      ~build:(fun ~proof _ -> ((), load_cnf_with ~proof cnf))
      ()
  in
  Alcotest.(check string) "php unsat" "unsat" (result_str o.Portfolio.c_result);
  Alcotest.(check bool) "php was cubed" true (o.Portfolio.n_cubes > 1);
  Alcotest.(check int) "all cubes refuted" o.Portfolio.n_cubes
    o.Portfolio.unsat_cubes;
  Alcotest.(check bool) "stitched php trace verifies" true
    (Proof.check cnf (List.rev !steps))

let suite =
  [
    Alcotest.test_case "jobs=1 bit-for-bit vs sequential" `Quick
      test_jobs1_bit_for_bit;
    Alcotest.test_case "jobs=3 agrees with oracle" `Slow
      test_parallel_agreement;
    Alcotest.test_case "parallel unsat traces verify" `Slow
      test_parallel_proof_verifies;
    Alcotest.test_case "opt portfolio agrees on optimum" `Slow
      test_opt_portfolio_agreement;
    Alcotest.test_case "opt cubes agree on optimum" `Slow
      test_opt_cubes_agreement;
    Alcotest.test_case "clause sharing flows" `Quick test_sharing_flows;
    Alcotest.test_case "cubes agree with oracle (1 and 2 domains)" `Slow
      test_cubes_agreement;
    Alcotest.test_case "cube unsat traces stitch and verify" `Slow
      test_cubes_proof_stitched;
    Alcotest.test_case "cubed pigeonhole proof stitches and verifies" `Quick
      test_cubes_php_proof;
    Alcotest.test_case "portfolio chaos: budget vs cancel" `Slow
      test_portfolio_chaos;
  ]
