(** Heuristic baselines: simulated annealing in the style of
    Tindell/Burns/Wellings [5] (the Table 1 comparator), a
    communication-aware greedy first-fit, and random-restart search.
    All search over task placements only; routes and TDMA slots are
    completed deterministically by {!Taskalloc_rt.Routing.complete}.
    None is guaranteed optimal. *)

open Taskalloc_rt

type objective =
  | Trt of int  (** token rotation time of a TDMA medium *)
  | Sum_trt
  | Bus_load of int
  | Max_util

val evaluate : Model.problem -> Model.allocation -> objective -> int
(** Objective value of a complete allocation (lower is better). *)

val penalty : Model.problem -> Model.allocation -> int
(** Smooth infeasibility measure: summed deadline overruns plus heavily
    weighted structural violations; [0] iff analytically feasible with
    respect to deadlines, placement and routing. *)

val energy : Model.problem -> Model.allocation -> objective -> int
(** Annealing energy: [10_000 * penalty + evaluate]. *)

val random_placement : Taskalloc_workloads.Rng.t -> Model.problem -> int array

val try_complete : Model.problem -> int array -> Model.allocation option
(** {!Taskalloc_rt.Routing.complete}, with [None] on unroutable
    messages. *)

(** {1 Greedy first fit} *)

val greedy :
  ?seed:int -> Model.problem -> objective -> (Model.allocation * int) option
(** Cluster tasks by message-graph connectivity and place each cluster
    whole on the least-loaded admissible ECU (pins stay put).  [Some]
    only if the completed allocation is feasible. *)

(** {1 Simulated annealing} *)

type sa_params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;  (** multiplicative per-iteration factor *)
  seed : int;
  restarts : int;
}

val default_sa : sa_params

val simulated_annealing :
  ?params:sa_params ->
  Model.problem ->
  objective ->
  (Model.allocation * int) option
(** Anneal over placements (first restart seeded from {!greedy});
    returns the best feasible allocation encountered, with its
    objective value. *)

(** {1 Random restart search} *)

val random_search :
  ?seed:int ->
  ?samples:int ->
  Model.problem ->
  objective ->
  (Model.allocation * int) option

(** {1 Best-effort degradation chain} *)

val best_effort :
  ?sa:sa_params ->
  Model.problem ->
  objective ->
  (string * Model.allocation * int) option
(** Cheapest-first fallback ladder: {!greedy}, then {!random_search},
    then {!simulated_annealing}.  Returns the first feasible
    allocation found, tagged with the name of the heuristic that
    produced it — the allocator's last resort when an exact solve runs
    out of budget before any incumbent exists. *)
