examples/redundancy.mli:
