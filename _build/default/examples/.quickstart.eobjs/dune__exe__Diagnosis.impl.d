examples/diagnosis.ml: Allocator Encode Fmt List Model Printf Report Taskalloc_core Taskalloc_rt
