(** Growable int vector, specialized to avoid the polymorphic-array
    write barrier on the solver's hottest paths (trail, literal
    buffers). *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool
val clear : t -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
val last : t -> int

val shrink : t -> int -> unit
(** Keep only the first [n] elements. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val to_array : t -> int array
val of_list : int list -> t
val sort : (int -> int -> int) -> t -> unit
