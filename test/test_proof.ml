(* Certification tests: the solver's DRUP traces must pass the
   independent RUP checker, and the checker must reject corrupted or
   truncated traces.  The checker is the trust root — these tests are
   what lets every other Unsat answer in the suite be believed. *)

open Taskalloc_sat
module Proof = Taskalloc_proof.Proof
module Fuzz = Taskalloc_fuzz.Fuzz

(* PHP(pigeons, holes) as a DIMACS cnf; var x_{p,h} = p*holes + h + 1 *)
let php_cnf ~pigeons ~holes =
  let v p h = (p * holes) + h + 1 in
  let some_hole = List.init pigeons (fun p -> List.init holes (fun h -> v p h)) in
  let exclusive =
    List.concat
      (List.init holes (fun h ->
           List.concat
             (List.init pigeons (fun p1 ->
                  List.filter_map
                    (fun p2 -> if p2 > p1 then Some [ -v p1 h; -v p2 h ] else None)
                    (List.init pigeons Fun.id)))))
  in
  { Dimacs.num_vars = pigeons * holes; clauses = some_hole @ exclusive }

(* fresh solver over [cnf] with proof recording installed up front *)
let recording_solver cnf =
  let s = Solver.create () in
  let trace = Proof.record s in
  for _ = 1 to cnf.Dimacs.num_vars do
    ignore (Solver.new_var s)
  done;
  List.iter (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c)) cnf.Dimacs.clauses;
  (s, trace)

let solve_traced cnf =
  let s, trace = recording_solver cnf in
  let result = Solver.solve s in
  (result, trace ())

let check_result = Alcotest.testable Fmt.(any "result") ( = )

let test_php_trace_accepted () =
  let cnf = php_cnf ~pigeons:4 ~holes:3 in
  let result, trace = solve_traced cnf in
  Alcotest.check check_result "php(4,3) unsat" Solver.Unsat result;
  Alcotest.(check bool) "trace non-trivial" true (List.length trace > 1);
  Alcotest.(check bool) "trace certified" true (Proof.check cnf trace)

let test_corrupted_traces_rejected () =
  let cnf = php_cnf ~pigeons:4 ~holes:3 in
  let result, trace = solve_traced cnf in
  Alcotest.check check_result "php(4,3) unsat" Solver.Unsat result;
  (* claiming the empty clause without derivation *)
  Alcotest.(check bool) "bare empty clause rejected" false
    (Proof.check cnf [ Proof.Add [] ]);
  (* a unit the formula does not imply *)
  Alcotest.(check bool) "bogus unit rejected" false
    (Proof.check cnf (Proof.Add [ 1 ] :: trace));
  Alcotest.(check bool) "bogus fresh-var unit rejected" false
    (Proof.check cnf (Proof.Add [ cnf.Dimacs.num_vars + 1 ] :: trace));
  (* truncation: a one-step prefix derives nothing *)
  let truncated = [ List.hd trace ] in
  (match Proof.verify cnf truncated with
  | Proof.Valid -> Alcotest.fail "truncated trace must not verify"
  | Proof.Invalid { step; reason } ->
    Alcotest.(check int) "fails at end of trace" (List.length truncated) step;
    Alcotest.(check bool) "reason mentions empty clause" true
      (String.length reason > 0));
  (* deleting an input clause the derivation still needs *)
  let first_clause = List.hd cnf.Dimacs.clauses in
  Alcotest.(check bool) "premature input deletion rejected" false
    (Proof.check cnf (Proof.Delete first_clause :: trace))

let test_sat_trace_not_certificate () =
  (* a satisfiable instance's trace never derives the empty clause *)
  let cnf = { Dimacs.num_vars = 3; clauses = [ [ 1; 2 ]; [ -1; 3 ] ] } in
  let result, trace = solve_traced cnf in
  Alcotest.check check_result "sat" Solver.Sat result;
  Alcotest.(check bool) "no unsat certificate" false (Proof.check cnf trace)

let test_random_unsat_traces_accepted () =
  (* 200 seeded random Unsat instances, every trace certified *)
  let accepted = ref 0 in
  let seed = ref 0 in
  while !accepted < 200 do
    let cnf = Fuzz.gen_cnf ~seed:!seed ~max_vars:8 in
    incr seed;
    let result, trace = solve_traced cnf in
    if result = Solver.Unsat then begin
      if not (Proof.check cnf trace) then
        Alcotest.failf "seed %d: unsat trace rejected" (!seed - 1);
      incr accepted
    end
  done;
  Alcotest.(check int) "200 certified" 200 !accepted

let test_budget_interrupted_resume_certified () =
  (* interrupt mid-search, resume to Unsat: the accumulated trace must
     still be one valid refutation *)
  let cnf = php_cnf ~pigeons:6 ~holes:5 in
  let s, trace = recording_solver cnf in
  let budget = Budget.create ~max_conflicts:5 ~check_every:1 () in
  Alcotest.check check_result "interrupted" Solver.Unknown (Solver.solve ~budget s);
  Alcotest.check check_result "resumed to unsat" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool) "accumulated trace certified" true
    (Proof.check cnf (trace ()))

let test_pb_trace_accepted () =
  (* pigeonhole via native PB constraints; Add_pb lemmas carry the
     explanations, the checker verifies them against the input pbs *)
  let pigeons = 4 and holes = 3 in
  let v p h = (p * holes) + h + 1 in
  let pbs =
    List.init pigeons (fun p ->
        { Proof.terms = List.init holes (fun h -> (1, v p h)); degree = 1 })
    @ List.init holes (fun h ->
          {
            Proof.terms = List.init pigeons (fun p -> (1, -v p h));
            degree = pigeons - 1;
          })
  in
  let s = Solver.create () in
  let trace = Proof.record s in
  for _ = 1 to pigeons * holes do
    ignore (Solver.new_var s)
  done;
  List.iter
    (fun { Proof.terms; degree } ->
      Solver.add_pb_geq s (List.map (fun (a, l) -> (a, Lit.of_dimacs l)) terms) degree)
    pbs;
  Alcotest.check check_result "pb php(4,3) unsat" Solver.Unsat (Solver.solve s);
  let cnf = { Dimacs.num_vars = pigeons * holes; clauses = [] } in
  Alcotest.(check bool) "pb trace certified" true (Proof.check ~pbs cnf (trace ()));
  Alcotest.(check bool) "pb trace needs the pbs" false (Proof.check cnf (trace ()))

let test_inprocessing_trace_accepted () =
  (* vivification/subsumption/BVE rewrite the clause database mid-solve;
     every derived clause and deletion must be DRUP-logged so the
     accumulated trace is still one valid refutation of the input *)
  let cnf = php_cnf ~pigeons:5 ~holes:4 in
  let s, trace = recording_solver cnf in
  Inprocess.install ~every:16 s;
  Alcotest.check check_result "php(5,4) unsat with passes active" Solver.Unsat
    (Solver.solve s);
  Alcotest.(check bool) "inprocessed trace certified" true
    (Proof.check cnf (trace ()))

let test_run_passes_trace_accepted () =
  (* an explicit preprocessing round before search composes the same way *)
  let cnf = php_cnf ~pigeons:4 ~holes:3 in
  let s, trace = recording_solver cnf in
  ignore (Inprocess.run_passes s);
  Alcotest.check check_result "unsat after explicit passes" Solver.Unsat
    (Solver.solve s);
  Alcotest.(check bool) "trace certified" true (Proof.check cnf (trace ()))

let test_serialization_roundtrips () =
  let hand =
    [
      Proof.Add [ 1; -2; 3 ];
      Proof.Add_pb [ -4; 5 ];
      Proof.Delete [ 1; -2; 3 ];
      Proof.Add [ 127 ];
      Proof.Add [ -128 ];
      Proof.Add [];
    ]
  in
  Alcotest.(check bool) "text roundtrip (hand)" true
    (Proof.of_text (Proof.to_text hand) = hand);
  Alcotest.(check bool) "binary roundtrip (hand)" true
    (Proof.of_binary (Proof.to_binary hand) = hand);
  let cnf = php_cnf ~pigeons:4 ~holes:3 in
  let _, trace = solve_traced cnf in
  Alcotest.(check bool) "text roundtrip (php)" true
    (Proof.of_text (Proof.to_text trace) = trace);
  Alcotest.(check bool) "binary roundtrip (php)" true
    (Proof.of_binary (Proof.to_binary trace) = trace);
  (* a reserialized trace still certifies *)
  Alcotest.(check bool) "reparsed trace certified" true
    (Proof.check cnf (Proof.of_text (Proof.to_text trace)))

let test_text_format () =
  let trace = Proof.of_text "c comment\n1 -2 0\nd 1 -2 0\np 3 0\n0\n" in
  Alcotest.(check bool) "parsed" true
    (trace
    = [ Proof.Add [ 1; -2 ]; Proof.Delete [ 1; -2 ]; Proof.Add_pb [ 3 ]; Proof.Add [] ]);
  (match Proof.of_text "1 -2\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing terminator must raise")

let suite =
  [
    Alcotest.test_case "php(4,3) trace accepted" `Quick test_php_trace_accepted;
    Alcotest.test_case "corrupted traces rejected" `Quick test_corrupted_traces_rejected;
    Alcotest.test_case "sat trace is no certificate" `Quick test_sat_trace_not_certificate;
    Alcotest.test_case "200 random unsat traces" `Slow test_random_unsat_traces_accepted;
    Alcotest.test_case "budget interrupt + resume" `Quick test_budget_interrupted_resume_certified;
    Alcotest.test_case "pb trace accepted" `Quick test_pb_trace_accepted;
    Alcotest.test_case "inprocessing trace accepted" `Quick
      test_inprocessing_trace_accepted;
    Alcotest.test_case "run_passes trace accepted" `Quick
      test_run_passes_trace_accepted;
    Alcotest.test_case "serialization roundtrips" `Quick test_serialization_roundtrips;
    Alcotest.test_case "text format" `Quick test_text_format;
  ]
