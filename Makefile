.PHONY: all build test check ci bench coverage clean

all: build

build:
	dune build

test:
	dune runtest

# full CI gate: typecheck, build, tests, format (when available), CLI
# and daemon smokes
check:
	sh bin/ci.sh

ci: check

bench:
	dune exec bench/main.exe -- quick

# line-coverage report via bisect_ppx, gated on the preprocessor being
# installed (it is optional tooling, not a build dependency); see the
# coverage baseline note in EXPERIMENTS.md
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  dune runtest --instrument-with bisect_ppx --force && \
	  bisect-ppx-report summary --per-file; \
	else \
	  echo "coverage: bisect_ppx not installed; skipping (see EXPERIMENTS.md)"; \
	fi

clean:
	dune clean
