#!/bin/sh
# CI entry point: typecheck, build, test, format-check, and smoke-test
# the budgeted CLI.  Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# format check only where the toolchain provides ocamlformat
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== dune build @fmt =="
    dune build @fmt
else
    echo "== skipping @fmt (ocamlformat not installed) =="
fi

# regression: a budgeted solve must exit 0 and report its provenance,
# never leak an exception (the old Budget_exceeded escape)
echo "== CLI smoke: tiny wall-clock budget =="
out=$(dune exec bin/taskalloc.exe -- solve --workload small --timeout 0.05)
echo "$out" | grep -q "resolution:" || {
    echo "FAIL: budgeted solve did not report a resolution"; exit 1; }

echo "== CLI smoke: tiny conflict budget =="
out=$(dune exec bin/taskalloc.exe -- solve --workload small --max-conflicts 1)
echo "$out" | grep -q "resolution:" || {
    echo "FAIL: conflict-budgeted solve did not report a resolution"; exit 1; }

echo "== CLI smoke: unbudgeted solve still optimal =="
out=$(dune exec bin/taskalloc.exe -- solve --workload small)
echo "$out" | grep -q "resolution: optimal" || {
    echo "FAIL: unbudgeted solve not optimal"; exit 1; }

# certification round-trip: an Unsat run must emit a DRUP trace the
# independent checker verifies (pigeonhole PHP(4,3): 4 pigeons, 3 holes)
echo "== CLI smoke: proof logging + check round-trip =="
cnf=$(mktemp /tmp/ci-php43-XXXXXX.cnf)
proof=$(mktemp /tmp/ci-php43-XXXXXX.drup)
cat > "$cnf" <<'EOF'
p cnf 12 22
1 2 3 0
4 5 6 0
7 8 9 0
10 11 12 0
-1 -4 0
-1 -7 0
-1 -10 0
-4 -7 0
-4 -10 0
-7 -10 0
-2 -5 0
-2 -8 0
-2 -11 0
-5 -8 0
-5 -11 0
-8 -11 0
-3 -6 0
-3 -9 0
-3 -12 0
-6 -9 0
-6 -12 0
-9 -12 0
EOF
# Unsat exits 20 by SAT-competition convention; anything else is a failure
rc=0
dune exec bin/dimacs_solve.exe -- --proof "$proof" "$cnf" > /dev/null || rc=$?
[ "$rc" -eq 20 ] || { echo "FAIL: expected Unsat (exit 20), got $rc"; exit 1; }
out=$(dune exec bin/dimacs_solve.exe -- --check "$proof" "$cnf")
echo "$out" | grep -q "s VERIFIED" || {
    echo "FAIL: proof did not verify"; exit 1; }
rm -f "$cnf" "$proof"

# differential fuzz: solver vs brute-force oracle, Unsat answers
# certified by the proof checker; exits non-zero on any discrepancy
echo "== CLI smoke: bounded fuzz campaign =="
out=$(dune exec bin/taskalloc.exe -- fuzz --iters 200 --seed 1)
echo "$out" | grep -q " 0 failures" || {
    echo "FAIL: fuzz campaign found discrepancies"; echo "$out"; exit 1; }

# ---- parallel portfolio -------------------------------------------------

# the same allocation solved sequentially and by a 4-worker portfolio
# must agree on the optimum
echo "== CLI smoke: solve with --jobs 4 =="
out=$(dune exec bin/taskalloc.exe -- solve --workload small --jobs 4)
echo "$out" | grep -q "resolution: optimal" || {
    echo "FAIL: portfolio solve not optimal"; exit 1; }

# certifying interlock under parallelism: with --jobs 4 + --proof every
# worker records its own self-contained trace (clause import is
# disabled) and the winner's trace must still verify
echo "== CLI smoke: parallel proof round-trip =="
cnf=$(mktemp /tmp/ci-php53-XXXXXX.cnf)
proof=$(mktemp /tmp/ci-php53-XXXXXX.drup)
cat > "$cnf" <<'EOF'
p cnf 15 35
1 2 3 0
4 5 6 0
7 8 9 0
10 11 12 0
13 14 15 0
-1 -4 0
-1 -7 0
-1 -10 0
-1 -13 0
-4 -7 0
-4 -10 0
-4 -13 0
-7 -10 0
-7 -13 0
-10 -13 0
-2 -5 0
-2 -8 0
-2 -11 0
-2 -14 0
-5 -8 0
-5 -11 0
-5 -14 0
-8 -11 0
-8 -14 0
-11 -14 0
-3 -6 0
-3 -9 0
-3 -12 0
-3 -15 0
-6 -9 0
-6 -12 0
-6 -15 0
-9 -12 0
-9 -15 0
-12 -15 0
EOF
rc=0
dune exec bin/dimacs_solve.exe -- --jobs 4 --proof "$proof" "$cnf" > /dev/null || rc=$?
[ "$rc" -eq 20 ] || { echo "FAIL: expected Unsat (exit 20), got $rc"; exit 1; }
out=$(dune exec bin/dimacs_solve.exe -- --check "$proof" "$cnf")
echo "$out" | grep -q "s VERIFIED" || {
    echo "FAIL: parallel proof did not verify"; exit 1; }
rm -f "$cnf" "$proof"

# differential fuzz with a 2-worker portfolio: oracle agreement and
# winner-trace certification must survive racing
echo "== CLI smoke: fuzz campaign with --jobs 2 =="
out=$(dune exec bin/taskalloc.exe -- fuzz --iters 60 --seed 2 --jobs 2)
echo "$out" | grep -q " 0 failures" || {
    echo "FAIL: parallel fuzz campaign found discrepancies"; echo "$out"; exit 1; }

# ---- cube-and-conquer + inprocessing ------------------------------------

# cube-and-conquer over 2 domains on an allocation instance: the
# lookahead splitter partitions on the encoder's decision hints and the
# optimum must match the sequential answer
echo "== CLI smoke: solve with --jobs 2 --parallel cubes =="
trace=$(mktemp /tmp/ci-cubes-XXXXXX.json)
out=$(dune exec bin/taskalloc.exe -- solve --workload small --jobs 2 \
    --parallel cubes --trace "$trace")
echo "$out" | grep -q "resolution: optimal" || {
    echo "FAIL: cube solve not optimal"; echo "$out"; exit 1; }
grep -q '"cubes\.' "$trace" || {
    echo "FAIL: trace file missing cube spans"; exit 1; }
rm -f "$trace" "${trace%.json}.jsonl"

# all-cubes-Unsat certification: the per-cube DRUP traces are stitched
# into one refutation of the input, which the checker must accept
# (PHP(5,4); tiny instances may be decided outright by the presolve,
# which still yields a verifiable trace)
echo "== CLI smoke: cubes proof round-trip =="
cnf=$(mktemp /tmp/ci-php54-XXXXXX.cnf)
proof=$(mktemp /tmp/ci-php54-XXXXXX.drup)
{
    echo "p cnf 20 45"
    for p in 0 1 2 3 4; do
        echo "$((4*p+1)) $((4*p+2)) $((4*p+3)) $((4*p+4)) 0"
    done
    for h in 1 2 3 4; do
        for p1 in 0 1 2 3 4; do
            for p2 in 0 1 2 3 4; do
                if [ "$p2" -gt "$p1" ]; then
                    echo "-$((4*p1+h)) -$((4*p2+h)) 0"
                fi
            done
        done
    done
} > "$cnf"
rc=0
dune exec bin/dimacs_solve.exe -- --jobs 2 --parallel cubes --proof "$proof" "$cnf" \
    > /dev/null || rc=$?
[ "$rc" -eq 20 ] || { echo "FAIL: expected Unsat (exit 20), got $rc"; exit 1; }
out=$(dune exec bin/dimacs_solve.exe -- --check "$proof" "$cnf")
echo "$out" | grep -q "s VERIFIED" || {
    echo "FAIL: stitched cube proof did not verify"; exit 1; }
rm -f "$cnf" "$proof"

# inprocessing differential fuzz through the CLI: with and without the
# passes every verdict/optimum must agree and inprocessed Unsat traces
# must certify
echo "== CLI smoke: fuzz --inprocess =="
out=$(dune exec bin/taskalloc.exe -- fuzz --inprocess --iters 15 --seed 7)
echo "$out" | grep -q " 0 failures" || {
    echo "FAIL: inprocessing campaign found discrepancies"; echo "$out"; exit 1; }

# ---- infeasibility explanation ------------------------------------------

# the over-constrained example must be diagnosed with a named deadline
# core (exit 1 = infeasible by CLI convention)
echo "== CLI smoke: explain an over-constrained instance =="
rc=0
out=$(dune exec bin/taskalloc.exe -- explain --file examples/overconstrained.prob) || rc=$?
[ "$rc" -eq 1 ] || { echo "FAIL: expected infeasible (exit 1), got $rc"; exit 1; }
echo "$out" | grep -q "INFEASIBLE" || {
    echo "FAIL: explain did not report infeasibility"; echo "$out"; exit 1; }
echo "$out" | grep -q "deadline of" || {
    echo "FAIL: explain core did not name a deadline group"; echo "$out"; exit 1; }

# what-if round trip on one live session: the baseline is infeasible,
# dropping one fusion deadline is feasible, and the baseline re-asked
# afterwards is infeasible again (assumption state fully cleared)
echo "== CLI smoke: what-if round trip =="
out=$(dune exec bin/taskalloc.exe -- whatif --file examples/overconstrained.prob \
    --query "" --query "drop deadline fusion-a" --query "")
echo "$out" | grep -q "query 1 \[baseline\]: INFEASIBLE" || {
    echo "FAIL: baseline what-if not infeasible"; echo "$out"; exit 1; }
echo "$out" | grep -q "query 2 \[drop deadline fusion-a\]: FEASIBLE" || {
    echo "FAIL: relaxed what-if not feasible"; echo "$out"; exit 1; }
echo "$out" | grep -c "INFEASIBLE" | grep -q "^2$" || {
    echo "FAIL: repeated baseline did not return to infeasible"; echo "$out"; exit 1; }

# assumption cores over the DIMACS front end: assuming 1 and 2 against
# (~1 | ~2) is Unsat with a "c core" line naming the culprits
echo "== CLI smoke: dimacs_solve --assume core =="
cnf=$(mktemp /tmp/ci-assume-XXXXXX.cnf)
assume=$(mktemp /tmp/ci-assume-XXXXXX.lits)
printf 'p cnf 3 2\n-1 -2 0\n1 3 0\n' > "$cnf"
printf '1 2\n' > "$assume"
rc=0
out=$(dune exec bin/dimacs_solve.exe -- --assume "$assume" "$cnf") || rc=$?
[ "$rc" -eq 20 ] || { echo "FAIL: expected Unsat (exit 20), got $rc"; exit 1; }
echo "$out" | grep -q "^c core .*0$" || {
    echo "FAIL: no failed-assumption core printed"; echo "$out"; exit 1; }
rm -f "$cnf" "$assume"

# ---- online repair -------------------------------------------------------

# the disruption walkthrough end to end: every event in the stream must
# be repaired (degrading at the final failure), exit 0
echo "== CLI smoke: repair a disruption scenario =="
out=$(dune exec bin/taskalloc.exe -- repair --scenario examples/disruption.scen)
echo "$out" | grep -q "REPAIRED" || {
    echo "FAIL: scenario repair did not report a repair"; echo "$out"; exit 1; }
echo "$out" | grep -q "shed" || {
    echo "FAIL: final failure did not engage the degradation ladder"; echo "$out"; exit 1; }

# with shedding disabled the last failure is irreparable (exit 1), and
# a zero conflict budget yields a clean Unknown (exit 4) — never an
# exception
echo "== CLI smoke: repair --no-shed is irreparable =="
rc=0
dune exec bin/taskalloc.exe -- repair --scenario examples/disruption.scen \
    --no-shed > /dev/null || rc=$?
[ "$rc" -eq 1 ] || { echo "FAIL: expected irreparable (exit 1), got $rc"; exit 1; }

echo "== CLI smoke: repair under a zero conflict budget =="
rc=0
dune exec bin/taskalloc.exe -- repair --scenario examples/disruption.scen \
    --max-conflicts 0 > /dev/null || rc=$?
[ "$rc" -eq 4 ] || { echo "FAIL: expected unknown (exit 4), got $rc"; exit 1; }

# disruption campaigns: random repair streams cross-checked against the
# brute-force minimal-migration oracle, spread over 2 domains
echo "== CLI smoke: disruption fuzz with --jobs 2 =="
out=$(dune exec bin/taskalloc.exe -- fuzz --disruptions --iters 15 --seed 3 --jobs 2)
echo "$out" | grep -q " 0 failures" || {
    echo "FAIL: disruption campaign found discrepancies"; echo "$out"; exit 1; }

# ---- observability -------------------------------------------------------

# tracing + metrics on a parallel solve: both files must materialise,
# the trace must carry encode-family and per-worker spans, and the
# metrics snapshot must record per-family encode counts and solver
# progress samples
echo "== CLI smoke: --trace/--metrics on a portfolio solve =="
trace=$(mktemp /tmp/ci-trace-XXXXXX.json)
metrics=$(mktemp /tmp/ci-metrics-XXXXXX.json)
# --parallel auto picks cube-and-conquer on allocation problems, so pin
# the portfolio strategy: this smoke asserts per-worker portfolio spans
out=$(dune exec bin/taskalloc.exe -- solve --workload small --jobs 2 \
    --parallel portfolio --trace "$trace" --metrics "$metrics")
echo "$out" | grep -q "resolution: optimal" || {
    echo "FAIL: traced solve not optimal"; exit 1; }
grep -q '"traceEvents"' "$trace" || {
    echo "FAIL: trace file missing traceEvents"; exit 1; }
grep -q '"encode"' "$trace" || {
    echo "FAIL: trace file missing encode span"; exit 1; }
grep -q '"portfolio.worker"' "$trace" || {
    echo "FAIL: trace file missing per-worker spans"; exit 1; }
grep -q '"encode.alloc.vars"' "$metrics" || {
    echo "FAIL: metrics missing per-family encode counts"; exit 1; }
grep -q '"solver.progress_samples"' "$metrics" || {
    echo "FAIL: metrics missing solver progress samples"; exit 1; }
[ -s "${trace%.json}.jsonl" ] || {
    echo "FAIL: JSONL sibling of the trace not written"; exit 1; }
rm -f "$trace" "${trace%.json}.jsonl" "$metrics"

# bench smoke: the portfolio and explain experiments end to end on toy
# instances (generate BENCH_portfolio.json / BENCH_explain.json;
# speedups are not meaningful at this scale, only that the harnesses
# run clean)
# the multicore gate is honest: it must state the core count and either
# enforce the 2x-at-4-workers bound (>= 4 cores) or say it skipped
echo "== bench smoke: quick portfolio (multicore gate) =="
out=$(dune exec bench/main.exe -- quick portfolio)
echo "$out" | grep -q "cores available:" || {
    echo "FAIL: portfolio bench did not report the core count"; exit 1; }
echo "$out" | grep -q "gate:" || {
    echo "FAIL: portfolio bench did not print a gate verdict"; echo "$out"; exit 1; }
if echo "$out" | grep -q "gate: VIOLATED"; then
    echo "FAIL: multicore speedup gate violated"; echo "$out"; exit 1
fi
[ -s BENCH_portfolio.json ] || {
    echo "FAIL: BENCH_portfolio.json not written"; exit 1; }

echo "== bench smoke: quick explain =="
dune exec bench/main.exe -- quick explain > /dev/null

# enabled-vs-disabled observability overhead must stay within 5% and
# the disabled run must make zero clock reads (null-sink invariant)
echo "== bench smoke: quick obs overhead =="
out=$(dune exec bench/main.exe -- quick obs)
echo "$out" | grep -q "shape check: overhead .* OK" || {
    echo "FAIL: observability overhead bound violated"; echo "$out"; exit 1; }
[ -s BENCH_obs.json ] || {
    echo "FAIL: BENCH_obs.json not written"; exit 1; }

# ---- lazy/CEGAR encoding -------------------------------------------------

# differential campaign: every random instance solved by both the eager
# and the lazy encoder, verdicts and optima must agree on all 200
echo "== CLI smoke: lazy-vs-eager differential fuzz =="
out=$(dune exec bin/taskalloc.exe -- fuzz --lazy --iters 200 --seed 5)
echo "$out" | grep -q " 0 failures" || {
    echo "FAIL: lazy differential campaign found discrepancies"; echo "$out"; exit 1; }

# a lazy solve of a named workload must still prove optimality
echo "== CLI smoke: solve --lazy =="
out=$(dune exec bin/taskalloc.exe -- solve --workload tasks12 --lazy)
echo "$out" | grep -q "encoding: lazy (CEGAR)" || {
    echo "FAIL: --lazy did not engage the lazy encoder"; echo "$out"; exit 1; }
echo "$out" | grep -q "resolution: optimal" || {
    echo "FAIL: lazy solve not optimal"; echo "$out"; exit 1; }

# abstraction shape: >= 5x smaller than eager, >= 2x faster to encode,
# identical optima (asserted inside the harness)
echo "== bench smoke: quick cegar =="
out=$(dune exec bench/main.exe -- quick cegar)
echo "$out" | grep -q "shape check: .*OK" || {
    echo "FAIL: cegar shape check violated"; echo "$out"; exit 1; }
[ -s BENCH_cegar.json ] || {
    echo "FAIL: BENCH_cegar.json not written"; exit 1; }

# ---- allocation-as-a-service daemon --------------------------------------

# taskallocd end to end over a Unix socket: open -> solve -> whatif ->
# repair -> stats -> close, all ok:true; then admission control
# (deadline-bounded and zero-budget requests answered, never hung) and
# a clean SIGTERM drain that removes the socket file.  The binaries
# are driven directly from _build (already built above) so the timing
# assertion is not polluted by dune startup.
echo "== daemon smoke: taskallocd over a Unix socket =="
TAD=_build/default/bin/taskallocd.exe
TAC=_build/default/bin/taskalloc.exe
dsock=$(mktemp -u /tmp/ci-taskallocd-XXXXXX.sock)
dlog=$(mktemp /tmp/ci-taskallocd-XXXXXX.log)
dflight=$(mktemp -u /tmp/ci-taskallocd-XXXXXX-flight.json)
"$TAD" --socket "$dsock" --workers 2 \
    --prometheus 127.0.0.1:0 --flight "$dflight" 2> "$dlog" &
dpid=$!
i=0
while [ ! -S "$dsock" ]; do
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "FAIL: daemon socket never appeared"; exit 1; }
    sleep 0.1
done
out=$("$TAC" client --socket "$dsock" \
    -r '{"kind":"open","id":1,"problem_file":"examples/fleet.prob"}' \
    -r '{"kind":"solve","id":2,"session":"s1","objective":"trt"}' \
    -r '{"kind":"whatif","id":3,"session":"s1","deltas":"pin brake-ctrl 0"}' \
    -r '{"kind":"repair","id":4,"session":"s1","event":"fail-ecu 2"}' \
    -r '{"kind":"stats","id":5}' \
    -r '{"kind":"close","id":6,"session":"s1"}') || {
    echo "FAIL: daemon session round-trip had an error response"
    echo "$out"; kill "$dpid" 2>/dev/null; exit 1; }
echo "$out" | grep -q '"outcome":"solved"' || {
    echo "FAIL: daemon solve did not solve"; echo "$out"; exit 1; }
echo "$out" | grep -q '"status":"repaired"' || {
    echo "FAIL: daemon repair did not repair"; echo "$out"; exit 1; }
echo "$out" | grep -q '"requests":' || {
    echo "FAIL: daemon stats missing counters"; echo "$out"; exit 1; }

# a starved, deadline-bounded solve must return within its budget with
# non-Optimal provenance (anytime ladder), never hang past the deadline
echo "== daemon smoke: deadline-bounded request =="
t0=$(date +%s)
out=$("$TAC" client --socket "$dsock" \
    -r '{"kind":"open","id":1,"workload":"tasks12","seed":42}' \
    -r '{"kind":"solve","id":2,"session":"s2","objective":"trt","max_conflicts":1,"deadline_ms":20000}') || {
    echo "FAIL: deadline-bounded solve errored"; echo "$out"; exit 1; }
t1=$(date +%s)
[ $((t1 - t0)) -le 15 ] || {
    echo "FAIL: deadline-bounded solve took $((t1 - t0))s"; exit 1; }
echo "$out" | grep -q '"quality":"optimal"' && {
    echo "FAIL: starved solve claimed Optimal provenance"; echo "$out"; exit 1; }
echo "$out" | grep -Eq '"quality":"(anytime|heuristic)"' || {
    echo "FAIL: starved solve reported no provenance"; echo "$out"; exit 1; }

# zero budget, no fallback: a clean unknown, not a hang or an exception
echo "== daemon smoke: zero-budget request returns unknown =="
out=$("$TAC" client --socket "$dsock" \
    -r '{"kind":"solve","id":3,"session":"s2","objective":"trt","max_conflicts":0,"fallback":false}') || {
    echo "FAIL: zero-budget solve errored"; echo "$out"; exit 1; }
echo "$out" | grep -q '"outcome":"unknown"' || {
    echo "FAIL: zero-budget solve not unknown"; echo "$out"; exit 1; }

# ---- request-scoped observability ---------------------------------------

# Prometheus exposition: the daemon printed its ephemeral /metrics port
# at startup; a scrape must return the request counter and the latency
# histogram with a +Inf bucket
echo "== daemon smoke: /metrics scrape =="
i=0
pport=""
while [ -z "$pport" ]; do
    pport=$(sed -n 's|.*http://127.0.0.1:\([0-9]*\)/metrics.*|\1|p' "$dlog")
    [ -n "$pport" ] && break
    i=$((i+1))
    [ "$i" -le 50 ] || { echo "FAIL: daemon never printed the /metrics port"; exit 1; }
    sleep 0.1
done
scrape=$(curl -fs "http://127.0.0.1:$pport/metrics") || {
    echo "FAIL: /metrics scrape failed"; exit 1; }
echo "$scrape" | grep -q '^taskalloc_requests_total ' || {
    echo "FAIL: scrape missing taskalloc_requests_total"; exit 1; }
echo "$scrape" | grep -q 'taskalloc_request_duration_us_bucket{le="+Inf"}' || {
    echo "FAIL: scrape missing latency histogram"; exit 1; }

# live progress streaming: a deadline-bounded optimizing solve watched
# from a second connection must stream >= 1 progress event, every line
# tagged with the request id, and any gap values must never increase
echo "== daemon smoke: concurrent watch streams progress =="
watchout=$(mktemp /tmp/ci-watch-XXXXXX.out)
solveout=$(mktemp /tmp/ci-solve-XXXXXX.out)
"$TAC" client --socket "$dsock" \
    -r '{"kind":"open","id":1,"workload":"tasks30","seed":42}' > /dev/null
"$TAC" client --socket "$dsock" \
    -r '{"kind":"solve","session":"s3","objective":"trt","deadline_ms":15000,"request_id":"ciwatch"}' \
    > "$solveout" &
spid=$!
i=0
while :; do
    "$TAC" client --socket "$dsock" --watch ciwatch > "$watchout"
    grep -q '"error":"unknown_request"' "$watchout" || break
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "FAIL: watch never attached"; exit 1; }
done
wait "$spid" || { echo "FAIL: watched solve errored"; cat "$solveout"; exit 1; }
grep -q '"event":"progress"' "$watchout" || {
    echo "FAIL: watch streamed no progress events"; cat "$watchout"; exit 1; }
grep -c '"request_id":"ciwatch"' "$watchout" > /dev/null || {
    echo "FAIL: watch lines not tagged with the request id"; exit 1; }
awk -F'"gap":' '/"event":"progress"/ && NF > 1 {
        split($2, a, /[,}]/); g = a[1] + 0
        if (seen && g > prev + 1e-9) exit 1
        prev = g; seen = 1
    }' "$watchout" || {
    echo "FAIL: progress gap increased over the stream"; cat "$watchout"; exit 1; }
grep -q '"outcome":"solved"' "$solveout" || {
    echo "FAIL: watched solve did not solve"; cat "$solveout"; exit 1; }

# cancel: an in-flight solve under a long deadline must answer promptly
# after the cancel trips its budget hook, with anytime/heuristic
# provenance — never Optimal, never running out the deadline
echo "== daemon smoke: cancel an in-flight solve =="
"$TAC" client --socket "$dsock" \
    -r '{"kind":"open","id":1,"workload":"ecus32","seed":42}' > /dev/null
t0=$(date +%s)
"$TAC" client --socket "$dsock" \
    -r '{"kind":"solve","session":"s4","objective":"trt","deadline_ms":60000,"request_id":"cicancel"}' \
    > "$solveout" &
spid=$!
# watch the stream from the side until the first incumbent appears, so
# the cancel is guaranteed to interrupt a solve that has an anytime
# answer to fall back on
: > "$watchout"
( i=0
  while :; do
      "$TAC" client --socket "$dsock" --watch cicancel >> "$watchout" 2>/dev/null
      grep -q '"error":"unknown_request"' "$watchout" || break
      : > "$watchout"
      i=$((i+1)); [ "$i" -le 100 ] || break
  done ) &
wpid=$!
i=0
while ! grep -q '"incumbent":' "$watchout" 2>/dev/null; do
    i=$((i+1))
    [ "$i" -le 300 ] || { echo "FAIL: solve never found an incumbent"; exit 1; }
    sleep 0.1
done
cancelout=$(mktemp /tmp/ci-cancel-XXXXXX.out)
i=0
while :; do
    "$TAC" client --socket "$dsock" --cancel cicancel > "$cancelout"
    grep -q '"cancelled":"cicancel"' "$cancelout" && break
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "FAIL: cancel never found the request"; exit 1; }
done
wait "$spid" || { echo "FAIL: cancelled solve errored"; cat "$solveout"; exit 1; }
t1=$(date +%s)
[ $((t1 - t0)) -le 30 ] || {
    echo "FAIL: cancelled solve took $((t1 - t0))s"; exit 1; }
grep -q '"quality":"optimal"' "$solveout" && {
    echo "FAIL: cancelled solve claimed Optimal provenance"; cat "$solveout"; exit 1; }
grep -Eq '"quality":"(anytime|heuristic)"' "$solveout" || {
    echo "FAIL: cancelled solve reported no provenance"; cat "$solveout"; exit 1; }
wait "$wpid" 2>/dev/null || true
rm -f "$watchout" "$solveout" "$cancelout"

# flight recorder: SIGUSR1 must dump the ring as parseable Chrome trace
# JSON without disturbing the serving loop
echo "== daemon smoke: SIGUSR1 flight dump =="
kill -USR1 "$dpid"
i=0
while [ ! -s "$dflight" ]; do
    i=$((i+1))
    [ "$i" -le 100 ] || { echo "FAIL: flight dump never appeared"; exit 1; }
    sleep 0.1
done
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool < "$dflight" > /dev/null || {
        echo "FAIL: flight dump is not valid JSON"; exit 1; }
fi
grep -q '"traceEvents"' "$dflight" || {
    echo "FAIL: flight dump missing traceEvents"; exit 1; }
grep -q '"server\.' "$dflight" || {
    echo "FAIL: flight dump recorded no server events"; exit 1; }
# the daemon is still serving after the dump
"$TAC" client --socket "$dsock" -r '{"kind":"ping"}' > /dev/null || {
    echo "FAIL: daemon unresponsive after SIGUSR1"; exit 1; }
rm -f "$dflight"

# SIGTERM: drain, exit 0, remove the socket file
echo "== daemon smoke: SIGTERM drain-then-exit =="
kill -TERM "$dpid"
rc=0
wait "$dpid" || rc=$?
[ "$rc" -eq 0 ] || { echo "FAIL: daemon exit code $rc on SIGTERM"; exit 1; }
[ ! -e "$dsock" ] || { echo "FAIL: socket file not cleaned up"; exit 1; }
rm -f "$dlog"

# warm-vs-fresh harness end to end on a toy instance (speedups are not
# meaningful at this scale; the shape gate runs in the full bench)
echo "== bench smoke: quick daemon =="
out=$(dune exec bench/main.exe -- quick daemon)
echo "$out" | grep -q "speedup" || {
    echo "FAIL: daemon bench did not report a speedup"; echo "$out"; exit 1; }
[ -s BENCH_daemon.json ] || {
    echo "FAIL: BENCH_daemon.json not written"; exit 1; }

# the entire tier-1 suite again with the lazy encoder as the default
# (dune runtest caches ignore the environment, so drive the test
# executable directly)
echo "== tier-1 under TASKALLOC_LAZY=1 =="
TASKALLOC_LAZY=1 dune exec test/test_main.exe > /dev/null

# and once more with CDCL inprocessing on everywhere: vivification,
# subsumption and BVE must be invisible to every tier-1 property
echo "== tier-1 under TASKALLOC_INPROCESS=1 =="
TASKALLOC_INPROCESS=1 dune exec test/test_main.exe > /dev/null

echo "CI OK"
