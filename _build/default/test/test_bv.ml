(* Tests for the bounded-integer bit-blasting layer. *)

open Taskalloc_sat
open Taskalloc_pb
open Taskalloc_bv

let is_sat ctx = Solver.solve (Bv.solver ctx) = Solver.Sat

let test_const_roundtrip () =
  List.iter
    (fun n ->
      let t = Bv.const n in
      Alcotest.(check int) (Printf.sprintf "hi %d" n) n (Bv.upper_bound t))
    [ 0; 1; 7; 100; 8191 ]

let test_var_range () =
  (* a variable in [0, 10] can be any value in range but not outside *)
  let ctx = Bv.create () in
  let x = Bv.var ctx ~hi:10 in
  Bv.assert_ ctx (Bv.ge_const ctx x 11);
  Alcotest.(check bool) "x <= 10 enforced" false (is_sat ctx);
  let ctx = Bv.create () in
  let x = Bv.var ctx ~hi:10 in
  Bv.assert_ ctx (Bv.eq_const ctx x 10);
  Alcotest.(check bool) "x = 10 possible" true (is_sat ctx);
  Alcotest.(check int) "value" 10 (Bv.model_int ctx x)

let test_addition () =
  let ctx = Bv.create () in
  let x = Bv.var ctx ~hi:50 and y = Bv.var ctx ~hi:50 in
  Bv.assert_ ctx (Bv.eq_const ctx x 17);
  Bv.assert_ ctx (Bv.eq_const ctx y 25);
  let s = Bv.add ctx x y in
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "17+25" 42 (Bv.model_int ctx s)

let test_sum_list () =
  let ctx = Bv.create () in
  let values = [ 3; 9; 11; 20; 1 ] in
  let terms = List.map Bv.const values in
  let s = Bv.sum ctx terms in
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "sum" (List.fold_left ( + ) 0 values) (Bv.model_int ctx s)

let test_mul_and_mul_const () =
  let ctx = Bv.create () in
  let x = Bv.var ctx ~hi:20 in
  Bv.assert_ ctx (Bv.eq_const ctx x 13);
  let a = Bv.mul_const ctx 7 x in
  let y = Bv.var ctx ~hi:6 in
  Bv.assert_ ctx (Bv.eq_const ctx y 6);
  let b = Bv.mul ctx x y in
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "13*7" 91 (Bv.model_int ctx a);
  Alcotest.(check int) "13*6" 78 (Bv.model_int ctx b)

let test_sub_asserting () =
  let ctx = Bv.create () in
  let a = Bv.var ctx ~hi:30 and b = Bv.var ctx ~hi:30 in
  Bv.assert_ ctx (Bv.eq_const ctx a 20);
  Bv.assert_ ctx (Bv.eq_const ctx b 8);
  let d = Bv.sub_asserting ctx a b in
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "20-8" 12 (Bv.model_int ctx d);
  (* and b > a is refused *)
  let ctx = Bv.create () in
  let a = Bv.var ctx ~hi:30 and b = Bv.var ctx ~hi:30 in
  Bv.assert_ ctx (Bv.eq_const ctx a 5);
  Bv.assert_ ctx (Bv.eq_const ctx b 9);
  let _ = Bv.sub_asserting ctx a b in
  Alcotest.(check bool) "5-9 impossible" false (is_sat ctx)

let test_ite () =
  let ctx = Bv.create () in
  let c = Bv.fresh_bool ctx in
  let r = Bv.ite ctx c (Bv.const 11) (Bv.const 22) in
  Bv.assert_ ctx c;
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "then branch" 11 (Bv.model_int ctx r)

let test_one_hot () =
  let ctx = Bv.create () in
  let sel = Bv.one_hot ctx 5 in
  Alcotest.(check bool) "sat" true (is_sat ctx);
  let count =
    Array.fold_left (fun n b -> if Bv.model_bool ctx b then n + 1 else n) 0 sel
  in
  Alcotest.(check int) "exactly one" 1 count

let test_select_const () =
  let ctx = Bv.create () in
  let sel = Bv.one_hot ctx 4 in
  let values = [| 10; 20; 30; 40 |] in
  let v = Bv.select_const ctx sel values in
  (* force selector 2 *)
  (match sel.(2) with
  | Circuits.Lit l -> Solver.add_clause (Bv.solver ctx) [ l ]
  | _ -> Alcotest.fail "selector should be a literal");
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "selected" 30 (Bv.model_int ctx v)

let test_assert_pb_le () =
  let ctx = Bv.create () in
  let sel = Bv.one_hot ctx 3 in
  (* memory-style constraint: 5*s0 + 9*s1 + 2*s2 <= 4 forces s2 *)
  Bv.assert_pb_le ctx [ (5, sel.(0)); (9, sel.(1)); (2, sel.(2)) ] 4;
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check bool) "s2 selected" true (Bv.model_bool ctx sel.(2))

let test_implication () =
  let ctx = Bv.create () in
  let c = Bv.fresh_bool ctx in
  let x = Bv.var ctx ~hi:15 in
  Bv.assert_implies ctx [ c ] (Bv.eq_const ctx x 7);
  Bv.assert_ ctx c;
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "x forced" 7 (Bv.model_int ctx x)

(* Property: random linear expressions evaluate correctly through the
   circuit when inputs are pinned. *)
let prop_linear_eval =
  QCheck.Test.make ~count:100 ~name:"bv linear expressions evaluate correctly"
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 5 in
          let* coeffs = list_size (return n) (int_range 0 6) in
          let* values = list_size (return n) (int_range 0 20) in
          return (coeffs, values)))
    (fun (coeffs, values) ->
      let ctx = Bv.create () in
      let xs =
        List.map
          (fun v ->
            let x = Bv.var ctx ~hi:20 in
            Bv.assert_ ctx (Bv.eq_const ctx x v);
            x)
          values
      in
      let terms = List.map2 (fun c x -> Bv.mul_const ctx c x) coeffs xs in
      let total = Bv.sum ctx terms in
      let expected = List.fold_left2 (fun acc c v -> acc + (c * v)) 0 coeffs values in
      is_sat ctx && Bv.model_int ctx total = expected)

(* Property: comparisons between pinned terms match integer semantics. *)
let prop_comparisons =
  QCheck.Test.make ~count:100 ~name:"bv comparisons match integers"
    QCheck.(make Gen.(pair (int_range 0 63) (int_range 0 63)))
    (fun (a, b) ->
      let ctx = Bv.create () in
      let x = Bv.var ctx ~hi:63 and y = Bv.var ctx ~hi:63 in
      Bv.assert_ ctx (Bv.eq_const ctx x a);
      Bv.assert_ ctx (Bv.eq_const ctx y b);
      (* build all comparison circuits before solving so their gate
         variables are part of the model *)
      let le = Bv.le ctx x y
      and lt = Bv.lt ctx x y
      and ge = Bv.ge ctx x y
      and gt = Bv.gt ctx x y
      and eq = Bv.eq ctx x y in
      is_sat ctx
      && Bv.model_bool ctx le = (a <= b)
      && Bv.model_bool ctx lt = (a < b)
      && Bv.model_bool ctx ge = (a >= b)
      && Bv.model_bool ctx gt = (a > b)
      && Bv.model_bool ctx eq = (a = b))

let test_with_hi () =
  let t = Bv.const 100 in
  Alcotest.(check int) "tighten" 50 (Bv.upper_bound (Bv.with_hi t 50));
  Alcotest.(check int) "no loosen" 100 (Bv.upper_bound (Bv.with_hi t 200))

let test_select_const_exhaustive () =
  (* every selector index yields its value *)
  let values = [| 5; 0; 31; 12 |] in
  Array.iteri
    (fun idx expected ->
      let ctx = Bv.create () in
      let sel = Bv.one_hot ctx 4 in
      let v = Bv.select_const ctx sel values in
      (match sel.(idx) with
      | Circuits.Lit l -> Solver.add_clause (Bv.solver ctx) [ l ]
      | _ -> Alcotest.fail "literal expected");
      Alcotest.(check bool) "sat" true (is_sat ctx);
      Alcotest.(check int) (Printf.sprintf "idx %d" idx) expected (Bv.model_int ctx v))
    values

let test_ite_false_branch () =
  let ctx = Bv.create () in
  let c = Bv.fresh_bool ctx in
  let r = Bv.ite ctx c (Bv.const 11) (Bv.const 22) in
  Bv.assert_ ctx (Bv.bnot c);
  Alcotest.(check bool) "sat" true (is_sat ctx);
  Alcotest.(check int) "else branch" 22 (Bv.model_int ctx r)

let test_boolean_gates_truth_tables () =
  List.iter
    (fun (name, op, table) ->
      List.iter
        (fun (a, b, expected) ->
          let ctx = Bv.create () in
          let x = Bv.fresh_bool ctx and y = Bv.fresh_bool ctx in
          let r = op ctx x y in
          Bv.assert_ ctx (if a then x else Bv.bnot x);
          Bv.assert_ ctx (if b then y else Bv.bnot y);
          Alcotest.(check bool) "sat" true (is_sat ctx);
          Alcotest.(check bool)
            (Printf.sprintf "%s %b %b" name a b)
            expected (Bv.model_bool ctx r))
        table)
    [
      ("and", Bv.band, [ (false, false, false); (false, true, false); (true, false, false); (true, true, true) ]);
      ("or", Bv.bor, [ (false, false, false); (false, true, true); (true, false, true); (true, true, true) ]);
      ("xor", Bv.bxor, [ (false, false, false); (false, true, true); (true, false, true); (true, true, false) ]);
      ("iff", Bv.biff, [ (false, false, true); (false, true, false); (true, false, false); (true, true, true) ]);
      ("implies", Bv.bimplies, [ (false, false, true); (false, true, true); (true, false, false); (true, true, true) ]);
    ]

let prop_mul_matches_integers =
  QCheck.Test.make ~count:60 ~name:"bv symbolic multiplication is exact"
    QCheck.(make Gen.(pair (int_range 0 31) (int_range 0 31)))
    (fun (a, b) ->
      let ctx = Bv.create () in
      let x = Bv.var ctx ~hi:31 and y = Bv.var ctx ~hi:31 in
      Bv.assert_ ctx (Bv.eq_const ctx x a);
      Bv.assert_ ctx (Bv.eq_const ctx y b);
      let p = Bv.mul ctx x y in
      is_sat ctx && Bv.model_int ctx p = a * b)

let prop_sub_asserting =
  QCheck.Test.make ~count:60 ~name:"sub_asserting = max side-condition"
    QCheck.(make Gen.(pair (int_range 0 40) (int_range 0 40)))
    (fun (a, b) ->
      let ctx = Bv.create () in
      let x = Bv.var ctx ~hi:40 and y = Bv.var ctx ~hi:40 in
      Bv.assert_ ctx (Bv.eq_const ctx x a);
      Bv.assert_ ctx (Bv.eq_const ctx y b);
      let d = Bv.sub_asserting ctx x y in
      if b <= a then is_sat ctx && Bv.model_int ctx d = a - b
      else not (is_sat ctx))

let suite =
  [
    Alcotest.test_case "const roundtrip" `Quick test_const_roundtrip;
    Alcotest.test_case "var range" `Quick test_var_range;
    Alcotest.test_case "addition" `Quick test_addition;
    Alcotest.test_case "sum list" `Quick test_sum_list;
    Alcotest.test_case "mul" `Quick test_mul_and_mul_const;
    Alcotest.test_case "sub asserting" `Quick test_sub_asserting;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "one hot" `Quick test_one_hot;
    Alcotest.test_case "select const" `Quick test_select_const;
    Alcotest.test_case "pb le over bits" `Quick test_assert_pb_le;
    Alcotest.test_case "implication" `Quick test_implication;
    Alcotest.test_case "with_hi" `Quick test_with_hi;
    Alcotest.test_case "select_const exhaustive" `Quick test_select_const_exhaustive;
    Alcotest.test_case "ite false branch" `Quick test_ite_false_branch;
    Alcotest.test_case "boolean gate tables" `Quick test_boolean_gates_truth_tables;
    QCheck_alcotest.to_alcotest prop_mul_matches_integers;
    QCheck_alcotest.to_alcotest prop_sub_asserting;
    QCheck_alcotest.to_alcotest prop_linear_eval;
    QCheck_alcotest.to_alcotest prop_comparisons;
  ]
