(** DIMACS CNF reading, writing and solving. *)

type cnf = {
  num_vars : int;
  clauses : int list list;  (** DIMACS integer literals: [+-(var+1)] *)
}

val parse_string : string -> cnf
(** Parse DIMACS CNF text.  Comment ([c]) and [%] lines are skipped;
    the [p cnf] header is optional (variable count is then inferred).
    Raises [Failure] on a malformed problem line. *)

val parse_file : string -> cnf

val print_cnf : Format.formatter -> cnf -> unit
(** Print in standard DIMACS format, including the [p cnf] header. *)

val load : cnf -> Solver.t
(** Load into a fresh solver; file variable [i] becomes solver variable
    [i-1]. *)

val solve_string : string -> Solver.result * Solver.t
(** Convenience: parse, load and solve in one step. *)
