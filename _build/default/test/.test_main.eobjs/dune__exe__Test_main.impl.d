test/test_main.ml: Alcotest Test_bv Test_core Test_heuristics Test_opt Test_pb Test_rt Test_sat Test_topology Test_workloads
