lib/core/allocator.mli: Check Encode Format Model Taskalloc_opt Taskalloc_rt
