(* Infeasibility diagnosis: when no allocation exists, targeted
   relaxations identify which constraint class is binding.

   The system below over-commits ECU memory: four 8-unit controllers
   must share two 12-unit ECUs.  Placement, deadlines and the bus are
   all fine — only the memory budget is impossible — and the diagnosis
   reports exactly that.

   Run with:  dune exec examples/diagnosis.exe *)

open Taskalloc_rt
open Taskalloc_core

let () =
  let arch =
    {
      Model.n_ecus = 2;
      media =
        [
          {
            Model.med_id = 0;
            med_name = "bus";
            kind = Model.Tdma;
            ecus = [ 0; 1 ];
            byte_time = 1;
            frame_overhead = 2;
          };
        ];
      mem_capacity = [| 12; 12 |];
      gateway_service = 0;
      barred = [];
    }
  in
  let controller id =
    {
      Model.task_id = id;
      task_name = Printf.sprintf "ctrl%d" id;
      period = 100;
      wcets = [ (0, 6); (1, 6) ];
      deadline = 80;
      memory = 8;
      separation = [];
      messages = [];
      jitter = 0;
      blocking = 0;
      criticality = 0;
    }
  in
  let problem = Model.make_problem ~arch ~tasks:(List.init 4 controller) in
  Fmt.pr "4 tasks x 8 memory units onto 2 ECUs x 12 units...@.";
  match Allocator.solve problem Encode.Feasible with
  | Allocator.Solved _ | Allocator.Unknown -> Fmt.pr "unexpectedly feasible?!@."
  | Allocator.Infeasible ->
    Fmt.pr "infeasible, as expected.  probing constraint classes:@.";
    List.iter
      (fun (relaxation, feasible) ->
        Fmt.pr "  %-32s %s@."
          (Fmt.str "%a" Allocator.pp_relaxation relaxation)
          (if feasible then "FEASIBLE  <- the binding constraint class"
           else "still infeasible"))
      (Allocator.diagnose problem);
    (* act on the diagnosis: double the memory and try again *)
    let fixed =
      Allocator.apply_relaxation problem Allocator.Drop_memory
    in
    (match Allocator.solve fixed Encode.Min_max_util with
    | Allocator.Solved r ->
      Fmt.pr "@.with the memory budget lifted, the optimum balances to %d permille:@."
        r.Allocator.cost;
      Fmt.pr "%a" Report.pp (Report.make fixed r.allocation)
    | Allocator.Infeasible | Allocator.Unknown -> Fmt.pr "still infeasible?!@.")
