(* Unit and property tests for the CDCL+PB solver. *)

open Taskalloc_sat

let lit v = Lit.of_var v
let nlit v = Lit.of_var ~sign:false v

let check_result = Alcotest.testable (fun ppf -> function
    | Solver.Sat -> Fmt.string ppf "Sat"
    | Solver.Unsat -> Fmt.string ppf "Unsat"
    | Solver.Unknown -> Fmt.string ppf "Unknown")
    ( = )

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v ];
  Alcotest.check check_result "x" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "model x" true (Solver.model_value s (lit v))

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v ];
  Solver.add_clause s [ nlit v ];
  Alcotest.check check_result "x & ~x" Solver.Unsat (Solver.solve s)

let test_empty_clause () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Solver.add_clause s [];
  Alcotest.check check_result "empty clause" Solver.Unsat (Solver.solve s)

let test_unit_propagation_chain () =
  let s = Solver.create () in
  let n = 50 in
  let vs = Array.init n (fun _ -> Solver.new_var s) in
  Solver.add_clause s [ lit vs.(0) ];
  for i = 0 to n - 2 do
    Solver.add_clause s [ nlit vs.(i); lit vs.(i + 1) ]
  done;
  Alcotest.check check_result "chain" Solver.Sat (Solver.solve s);
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "v%d" i) true (Solver.model_value s (lit vs.(i)))
  done

let test_simple_3sat () =
  (* (a | b) & (~a | c) & (~b | c) & ~c is unsat; without ~c sat *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ lit a; lit b ];
  Solver.add_clause s [ nlit a; lit c ];
  Solver.add_clause s [ nlit b; lit c ];
  Alcotest.check check_result "sat part" Solver.Sat (Solver.solve s);
  Solver.add_clause s [ nlit c ];
  Alcotest.check check_result "plus ~c" Solver.Unsat (Solver.solve s)

let pigeonhole ~pigeons ~holes =
  (* unsat iff pigeons > holes; classic hard family *)
  let s = Solver.create () in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> lit x.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ nlit x.(p1).(h); nlit x.(p2).(h) ]
      done
    done
  done;
  Solver.solve s

let test_pigeonhole () =
  Alcotest.check check_result "php(6,5) unsat" Solver.Unsat (pigeonhole ~pigeons:6 ~holes:5);
  Alcotest.check check_result "php(5,5) sat" Solver.Sat (pigeonhole ~pigeons:5 ~holes:5)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ nlit a; lit b ];
  Alcotest.check check_result "assume a" Solver.Sat
    (Solver.solve ~assumptions:[ lit a ] s);
  Alcotest.(check bool) "b forced" true (Solver.model_value s (lit b));
  Solver.add_clause s [ nlit b ];
  Alcotest.check check_result "assume a, now unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a ] s);
  Alcotest.check check_result "without assumption still sat" Solver.Sat
    (Solver.solve s);
  Alcotest.(check bool) "a false in model" false (Solver.model_value s (lit a))

let test_assumption_reuse () =
  (* assumptions must not leave permanent marks *)
  let s = Solver.create () in
  let a = Solver.new_var s in
  Alcotest.check check_result "assume a" Solver.Sat (Solver.solve ~assumptions:[ lit a ] s);
  Alcotest.check check_result "assume ~a" Solver.Sat (Solver.solve ~assumptions:[ nlit a ] s);
  Alcotest.check check_result "assume both" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a; nlit a ] s)

let test_unsat_core () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ nlit a; nlit b ];
  Alcotest.check check_result "assume a b c" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a; lit b; lit c ] s);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.mem l [ lit a; lit b; lit c ]) core);
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool) "c not needed" true (not (List.mem (lit c) core));
  (* the core must be unsat when re-assumed in isolation *)
  Alcotest.check check_result "core re-solves to unsat" Solver.Unsat
    (Solver.solve ~assumptions:core s)

let test_unsat_core_falsified_assumption () =
  (* an assumption already false by propagation must appear in the core *)
  let s = Solver.create () in
  let a = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ nlit c ];
  Alcotest.check check_result "assume a c" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a; lit c ] s);
  Alcotest.(check bool) "core is [c]" true (Solver.unsat_core s = [ lit c ])

let test_unsat_core_unconditional () =
  (* a formula unsat on its own yields an empty core *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit a ];
  Solver.add_clause s [ nlit a ];
  Alcotest.check check_result "unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ lit b ] s);
  Alcotest.(check bool) "empty core" true (Solver.unsat_core s = [])

let test_unsat_core_cleared () =
  (* unsat_core is only available right after an Unsat answer, and an
     assumption-Unsat episode must not poison the next plain solve *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ nlit a; lit b ];
  (match Solver.unsat_core s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsat_core before any solve should raise");
  Alcotest.check check_result "assumption unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a; nlit b ] s);
  Alcotest.(check bool) "core available" true (Solver.unsat_core s <> []);
  Alcotest.check check_result "plain solve recovers" Solver.Sat (Solver.solve s);
  (match Solver.unsat_core s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsat_core after Sat should raise")

let prop_unsat_core_valid =
  (* on random CNF + random assumptions: whenever the solver answers
     Unsat with a non-empty core, re-assuming just the core is Unsat *)
  let gen =
    QCheck.Gen.(
      let* num_vars = int_range 2 8 in
      let* num_clauses = int_range 1 14 in
      let clause_gen =
        let* n = int_range 1 3 in
        list_size (return n)
          (let* v = int_range 1 num_vars in
           let* s = bool in
           return (if s then v else -v))
      in
      let* clauses = list_size (return num_clauses) clause_gen in
      let* n_assum = int_range 1 num_vars in
      let* signs = list_size (return n_assum) bool in
      let assumptions = List.mapi (fun i s -> if s then i + 1 else -(i + 1)) signs in
      return (num_vars, clauses, assumptions))
  in
  QCheck.Test.make ~count:300 ~name:"failed-assumption cores re-solve to unsat"
    (QCheck.make gen)
    (fun (num_vars, clauses, assumptions) ->
      let s = Solver.create () in
      for _ = 1 to num_vars do
        ignore (Solver.new_var s)
      done;
      List.iter (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c)) clauses;
      let assumptions = List.map Lit.of_dimacs assumptions in
      match Solver.solve ~assumptions s with
      | Solver.Sat | Solver.Unknown -> true
      | Solver.Unsat ->
        let core = Solver.unsat_core s in
        List.for_all (fun l -> List.mem l assumptions) core
        && Solver.solve ~assumptions:core s = Solver.Unsat)

let test_pb_basic () =
  (* 2a + b + c >= 3 forces a *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_pb_geq s [ (2, lit a); (1, lit b); (1, lit c) ] 3;
  Alcotest.check check_result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "a forced" true (Solver.model_value s (lit a));
  Alcotest.(check bool) "b or c" true
    (Solver.model_value s (lit b) || Solver.model_value s (lit c))

let test_pb_conflict () =
  (* a + b >= 2 together with ~a is unsat *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_pb_geq s [ (1, lit a); (1, lit b) ] 2;
  Solver.add_clause s [ nlit a ];
  Alcotest.check check_result "unsat" Solver.Unsat (Solver.solve s)

let test_pb_infeasible_degree () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_pb_geq s [ (1, lit a) ] 5;
  Alcotest.check check_result "degree too high" Solver.Unsat (Solver.solve s)

let test_exactly_one () =
  let s = Solver.create () in
  let vs = List.init 8 (fun _ -> Solver.new_var s) in
  Solver.add_exactly_one s (List.map lit vs);
  Alcotest.check check_result "sat" Solver.Sat (Solver.solve s);
  let count =
    List.fold_left (fun n v -> if Solver.model_value s (lit v) then n + 1 else n) 0 vs
  in
  Alcotest.(check int) "exactly one true" 1 count

let test_pb_pigeonhole () =
  (* PHP with at-most-one holes expressed as PB: much faster to refute *)
  let pigeons = 7 and holes = 6 in
  let s = Solver.create () in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> lit x.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    Solver.add_at_most_one s (List.init pigeons (fun p -> lit x.(p).(h)))
  done;
  Alcotest.check check_result "php-pb unsat" Solver.Unsat (Solver.solve s)

let test_pb_knapsack_model_valid () =
  (* Random-ish weighted constraints; check any model actually satisfies
     them semantically. *)
  let s = Solver.create () in
  let n = 12 in
  let vs = Array.init n (fun _ -> Solver.new_var s) in
  let w = Array.init n (fun i -> (i mod 5) + 1) in
  let pairs = Array.to_list (Array.mapi (fun i v -> (w.(i), lit v)) vs) in
  let total = Array.fold_left ( + ) 0 w in
  Solver.add_pb_geq s pairs (total / 2);
  (* also an upper bound: sum w_i x_i <= 2*total/3, via negated lits *)
  let ub = 2 * total / 3 in
  Solver.add_pb_geq s (List.map (fun (a, l) -> (a, Lit.neg l)) pairs) (total - ub);
  Alcotest.check check_result "sat" Solver.Sat (Solver.solve s);
  let sum =
    Array.to_list vs
    |> List.mapi (fun i v -> if Solver.model_value s (lit v) then w.(i) else 0)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check bool) "lower bound holds" true (sum >= total / 2);
  Alcotest.(check bool) "upper bound holds" true (sum <= ub)

let test_dimacs_roundtrip () =
  let txt = "c comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n" in
  let cnf = Dimacs.parse_string txt in
  Alcotest.(check int) "vars" 3 cnf.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 3 (List.length cnf.Dimacs.clauses);
  let result, _ = Dimacs.solve_string txt in
  Alcotest.check check_result "solves" Solver.Sat result

let test_luby () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  List.iteri
    (fun i e -> Alcotest.(check int) (Printf.sprintf "luby %d" i) e (Luby.get i))
    expected

(* Property: solver agrees with brute force on random small CNFs. *)
let brute_force_sat num_vars clauses =
  let rec go assignment v =
    if v = num_vars then
      List.for_all
        (fun c -> List.exists (fun l -> assignment.(Stdlib.abs l - 1) = (l > 0)) c)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make num_vars false) 0

let random_cnf_gen =
  QCheck.Gen.(
    let* num_vars = int_range 1 8 in
    let* num_clauses = int_range 1 25 in
    let lit_gen =
      let* v = int_range 1 num_vars in
      let* s = bool in
      return (if s then v else -v)
    in
    let* clauses = list_size (return num_clauses) (list_size (int_range 1 4) lit_gen) in
    return (num_vars, clauses))

let prop_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute force"
    (QCheck.make random_cnf_gen)
    (fun (num_vars, clauses) ->
      let s = Solver.create () in
      for _ = 1 to num_vars do
        ignore (Solver.new_var s)
      done;
      List.iter (fun c -> Solver.add_clause s (List.map Lit.of_dimacs c)) clauses;
      let expected = brute_force_sat num_vars clauses in
      let got = Solver.solve s = Solver.Sat in
      if got && expected then
        (* model must actually satisfy every clause *)
        List.for_all
          (fun c -> List.exists (fun l -> Solver.model_value s (Lit.of_dimacs l)) c)
          clauses
      else got = expected)

let random_pb_gen =
  QCheck.Gen.(
    let* num_vars = int_range 1 7 in
    let* num_cons = int_range 1 8 in
    let con_gen =
      let* n = int_range 1 num_vars in
      let* coeffs = list_size (return n) (int_range 1 4) in
      let* signs = list_size (return n) bool in
      let* degree = int_range 0 8 in
      return (List.combine coeffs (List.mapi (fun i s -> (i + 1, s)) signs), degree)
    in
    let* cons = list_size (return num_cons) con_gen in
    return (num_vars, cons))

let brute_force_pb num_vars cons =
  let rec go assignment v =
    if v = num_vars then
      List.for_all
        (fun (pairs, degree) ->
          let sum =
            List.fold_left
              (fun acc (a, (var, sign)) ->
                let value = assignment.(var - 1) = sign in
                if value then acc + a else acc)
              0 pairs
          in
          sum >= degree)
        cons
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make num_vars false) 0

let prop_pb_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"PB solver agrees with brute force"
    (QCheck.make random_pb_gen)
    (fun (num_vars, cons) ->
      let s = Solver.create () in
      for _ = 1 to num_vars do
        ignore (Solver.new_var s)
      done;
      List.iter
        (fun (pairs, degree) ->
          let pairs =
            (* merge duplicate variables to respect the solver contract *)
            let tbl = Hashtbl.create 8 in
            List.iter
              (fun (a, (var, sign)) ->
                let l = Lit.of_var ~sign (var - 1) in
                let cur = try Hashtbl.find tbl l with Not_found -> 0 in
                Hashtbl.replace tbl l (cur + a))
              pairs;
            (* opposite literals of one variable: keep as separate lits is
               not allowed; resolve min overlap into a constant *)
            Hashtbl.fold (fun l a acc -> (a, l) :: acc) tbl []
          in
          (* split pairs that mention both polarities of one var *)
          let by_var = Hashtbl.create 8 in
          List.iter
            (fun (a, l) ->
              let v = Lit.var l in
              let pos, neg = try Hashtbl.find by_var v with Not_found -> (0, 0) in
              if Lit.sign l then Hashtbl.replace by_var v (pos + a, neg)
              else Hashtbl.replace by_var v (pos, neg + a))
            pairs;
          let const = ref 0 in
          let clean =
            Hashtbl.fold
              (fun v (pos, neg) acc ->
                let m = min pos neg in
                const := !const + m;
                let pos = pos - m and neg = neg - m in
                if pos > 0 then (pos, Lit.of_var v) :: acc
                else if neg > 0 then (neg, Lit.of_var ~sign:false v) :: acc
                else acc)
              by_var []
          in
          let degree = degree - !const in
          if degree > 0 then Solver.add_pb_geq s clean degree)
        cons;
      let expected = brute_force_pb num_vars cons in
      let got = Solver.solve s = Solver.Sat in
      got = expected)

(* -- incremental use, budgets, containers ------------------------------- *)

let test_incremental_narrowing () =
  (* add clauses between solves; models must respect all of them *)
  let s = Solver.create () in
  let vs = Array.init 6 (fun _ -> Solver.new_var s) in
  Solver.add_clause s (Array.to_list (Array.map lit vs));
  Alcotest.check check_result "first" Solver.Sat (Solver.solve s);
  (* forbid the current model, repeatedly: enumerate models *)
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < 100 do
    match Solver.solve s with
    | Solver.Sat ->
      incr count;
      let blocking =
        Array.to_list vs
        |> List.map (fun v ->
               if Solver.model_value s (lit v) then nlit v else lit v)
      in
      Solver.add_clause s blocking
    | Solver.Unsat -> continue := false
    | Solver.Unknown -> Alcotest.fail "unexpected unknown"
  done;
  (* 2^6 - 1 models satisfy "at least one of six" *)
  Alcotest.(check int) "model count" 63 !count

let test_conflict_budget () =
  (* php(8,7) cannot be refuted in 5 conflicts *)
  let s = Solver.create () in
  let x = Array.init 8 (fun _ -> Array.init 7 (fun _ -> Solver.new_var s)) in
  for p = 0 to 7 do
    Solver.add_clause s (List.init 7 (fun h -> lit x.(p).(h)))
  done;
  for h = 0 to 6 do
    for p1 = 0 to 7 do
      for p2 = p1 + 1 to 7 do
        Solver.add_clause s [ nlit x.(p1).(h); nlit x.(p2).(h) ]
      done
    done
  done;
  Alcotest.check check_result "budget" Solver.Unknown
    (Solver.solve ~max_conflicts:5 s);
  (* and the solver remains usable afterwards *)
  Alcotest.check check_result "full solve" Solver.Unsat (Solver.solve s);
  Alcotest.(check bool) "ok false after unsat" false (Solver.ok s)

(* php(p, p-1): p pigeons into p-1 holes — unsatisfiable, and hard
   enough that tiny budgets interrupt the refutation *)
let pigeonhole_solver p =
  let s = Solver.create () in
  let x = Array.init p (fun _ -> Array.init (p - 1) (fun _ -> Solver.new_var s)) in
  for i = 0 to p - 1 do
    Solver.add_clause s (List.init (p - 1) (fun h -> lit x.(i).(h)))
  done;
  for h = 0 to p - 2 do
    for p1 = 0 to p - 1 do
      for p2 = p1 + 1 to p - 1 do
        Solver.add_clause s [ nlit x.(p1).(h); nlit x.(p2).(h) ]
      done
    done
  done;
  s

let test_budget_module () =
  (* conflict accounting, latching, and the stop hook *)
  let b = Budget.create ~max_conflicts:10 () in
  Alcotest.(check bool) "fresh not exhausted" false (Budget.exhausted b);
  Budget.charge b ~conflicts:4 ~propagations:100;
  Alcotest.(check int) "remaining" 6 (Budget.remaining_conflicts b);
  Alcotest.(check bool) "under budget" false (Budget.exhausted b);
  Budget.charge b ~conflicts:6 ~propagations:0;
  Alcotest.(check bool) "at limit" true (Budget.exhausted b);
  Alcotest.(check bool) "latched" true (Budget.tripped b);
  Alcotest.(check int) "spent conflicts" 10 (Budget.spent_conflicts b);
  Alcotest.(check int) "spent propagations" 100 (Budget.spent_propagations b);
  (* an expired deadline trips immediately *)
  let b = Budget.create ~timeout:0. () in
  Alcotest.(check bool) "expired deadline" true (Budget.exhausted b);
  (* the hook is consulted and its trip latches: once tripped, the
     budget stays tripped even if the hook would later say "go" *)
  let stop = ref false in
  let polls = ref 0 in
  let b =
    Budget.create
      ~should_stop:(fun () ->
        incr polls;
        !stop)
      ()
  in
  Alcotest.(check bool) "hook says go" false (Budget.exhausted b);
  stop := true;
  Alcotest.(check bool) "hook says stop" true (Budget.exhausted b);
  stop := false;
  Alcotest.(check bool) "trip latches" true (Budget.exhausted b);
  Alcotest.(check int) "hook not re-polled after trip" 2 !polls;
  (* the unlimited budget never trips *)
  let b = Budget.unlimited () in
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited b);
  Budget.charge b ~conflicts:1_000_000 ~propagations:0;
  Alcotest.(check bool) "never exhausted" false (Budget.exhausted b)

let test_budget_resume_to_unsat () =
  (* Unknown is a clean pause: the instance stays reusable, and a
     fresh, larger budget lets the same solver finish the refutation *)
  let s = pigeonhole_solver 8 in
  Alcotest.check check_result "tiny budget pauses" Solver.Unknown
    (Solver.solve ~budget:(Budget.create ~max_conflicts:3 ~check_every:1 ()) s);
  Alcotest.(check bool) "still ok after pause" true (Solver.ok s);
  let learnt_after_pause = Solver.n_conflicts s in
  Alcotest.(check bool) "some work was done" true (learnt_after_pause > 0);
  (* several more pauses must each make progress without crashing *)
  for _ = 1 to 3 do
    ignore (Solver.solve ~budget:(Budget.create ~max_conflicts:7 ()) s)
  done;
  Alcotest.(check bool) "conflict count survives pauses" true
    (Solver.n_conflicts s >= learnt_after_pause);
  Alcotest.check check_result "unbounded resume refutes" Solver.Unsat
    (Solver.solve s)

let test_budget_resume_to_sat () =
  (* a satisfiable instance paused by a hook budget still yields a
     model on resume *)
  let s = Solver.create () in
  let vs = Array.init 30 (fun _ -> Solver.new_var s) in
  for i = 0 to 28 do
    Solver.add_clause s [ nlit vs.(i); lit vs.(i + 1) ]
  done;
  Solver.add_clause s [ lit vs.(0); lit vs.(29) ];
  let b = Budget.create ~should_stop:(fun () -> true) ~check_every:1 () in
  (* the hook trips at the first checkpoint; with so easy an instance
     the solve may finish before any conflict — both are acceptable,
     a crash is not *)
  (match Solver.solve ~budget:b s with
  | Solver.Sat | Solver.Unknown -> ()
  | Solver.Unsat -> Alcotest.fail "satisfiable by construction");
  Alcotest.check check_result "resume finds a model" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "model readable" true
    (Solver.model_value s (lit vs.(0)) || Solver.model_value s (lit vs.(29)))

let test_budget_shared_across_calls () =
  (* one budget governs total spend across several solves: later calls
     see what earlier calls charged *)
  let b = Budget.create ~max_conflicts:40 () in
  let s = pigeonhole_solver 8 in
  let r1 = Solver.solve ~budget:b s in
  Alcotest.check check_result "first call pauses" Solver.Unknown r1;
  Alcotest.(check bool) "charge recorded" true (Budget.spent_conflicts b >= 40);
  (* the shared budget is exhausted: a second solver must return
     Unknown immediately, doing no work *)
  let s2 = pigeonhole_solver 8 in
  Alcotest.check check_result "second call starves" Solver.Unknown
    (Solver.solve ~budget:b s2);
  Alcotest.(check int) "no work done" 0 (Solver.n_conflicts s2)

let test_budget_timeout () =
  (* a wall-clock deadline interrupts a hard refutation *)
  let s = pigeonhole_solver 11 in
  let b = Budget.create ~timeout:0.02 ~check_every:1 () in
  (match Solver.solve ~budget:b s with
  | Solver.Unknown -> ()
  | Solver.Unsat -> () (* a very fast machine might still finish *)
  | Solver.Sat -> Alcotest.fail "php is unsatisfiable");
  Alcotest.(check bool) "elapsed measured" true (Budget.elapsed b >= 0.)

let test_at_most_one_exhaustive () =
  (* all assignments of three variables against add_at_most_one *)
  for mask = 0 to 7 do
    let s = Solver.create () in
    let vs = Array.init 3 (fun _ -> Solver.new_var s) in
    Solver.add_at_most_one s (Array.to_list (Array.map lit vs));
    Array.iteri
      (fun i v -> Solver.add_clause s [ Lit.of_var ~sign:((mask lsr i) land 1 = 1) v ])
      vs;
    let popcount = (mask land 1) + ((mask lsr 1) land 1) + ((mask lsr 2) land 1) in
    Alcotest.check check_result
      (Printf.sprintf "mask %d" mask)
      (if popcount <= 1 then Solver.Sat else Solver.Unsat)
      (Solver.solve s)
  done

let test_statistics_monotone () =
  let s = Solver.create () in
  let vs = Array.init 10 (fun _ -> Solver.new_var s) in
  for i = 0 to 8 do
    Solver.add_clause s [ nlit vs.(i); lit vs.(i + 1) ]
  done;
  Solver.add_clause s [ lit vs.(0) ];
  ignore (Solver.solve s);
  Alcotest.(check bool) "propagations counted" true (Solver.n_propagations s > 0);
  Alcotest.(check int) "vars" 10 (Solver.n_vars s);
  Alcotest.(check bool) "literals counted" true (Solver.n_literals s >= 19)

let test_vec_operations () =
  let v = Vec.create (-1) in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check bool) "swap_remove hit" true (Vec.swap_remove ~eq:Int.equal v 50);
  Alcotest.(check bool) "swap_remove miss" false (Vec.swap_remove ~eq:Int.equal v 50);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check bool) "filtered" true (Vec.fold (fun acc x -> acc && x mod 2 = 0) true v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.size v)

let test_veci_operations () =
  let v = Veci.create () in
  for i = 0 to 49 do
    Veci.push v (49 - i)
  done;
  Alcotest.(check int) "size" 50 (Veci.size v);
  Veci.sort Int.compare v;
  Alcotest.(check int) "sorted first" 0 (Veci.get v 0);
  Alcotest.(check int) "sorted last" 49 (Veci.last v);
  Alcotest.(check (list int)) "to_list prefix" [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 3) (Veci.to_list v));
  Veci.shrink v 10;
  Alcotest.(check int) "shrunk" 10 (Veci.size v)

let test_order_heap () =
  let activity = ref (Array.make 8 0.) in
  let h = Order_heap.create activity in
  for v = 0 to 7 do
    !activity.(v) <- float_of_int (v mod 4);
    Order_heap.insert h v
  done;
  Alcotest.(check int) "size" 8 (Order_heap.size h);
  (* max activity is 3.0, shared by vars 3 and 7 *)
  let first = Order_heap.remove_max h in
  Alcotest.(check bool) "max activity" true (!activity.(first) = 3.0);
  (* bump a low one above everything *)
  !activity.(0) <- 100.;
  Order_heap.decrease h 0;
  Alcotest.(check int) "bumped to top" 0 (Order_heap.remove_max h);
  Alcotest.(check bool) "in_heap" false (Order_heap.in_heap h 0)

(* --- inprocessing: vivification, subsumption, BVE, the scheduler --- *)

let test_vivify_pass () =
  (* [~a; ~b; c] closes early under its own probes: asserting a
     propagates b through [~a; b], falsifying the ~b literal, so the
     clause shortens to [~a; c].  Added first so the probe sees its
     literals in input order (watch maintenance on the other clause's
     probe would reorder them past the propagation). *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ nlit a; nlit b; lit c ];
  Solver.add_clause s [ nlit a; lit b ];
  let lits_before = Solver.n_literals s in
  Alcotest.(check bool) "a clause shortened" true (Solver.vivify_pass s >= 1);
  Alcotest.(check bool) "fewer problem literals" true
    (Solver.n_literals s < lits_before);
  Alcotest.check check_result "a forces c" Solver.Sat
    (Solver.solve ~assumptions:[ lit a ] s);
  Alcotest.(check bool) "c true under a" true (Solver.model_value s (lit c));
  Alcotest.check check_result "a & ~c refuted" Solver.Unsat
    (Solver.solve ~assumptions:[ lit a; nlit c ] s)

let test_vivify_preserves_unsat () =
  let s = pigeonhole_solver 6 in
  ignore (Solver.vivify_pass s);
  Alcotest.check check_result "php(6,5) still unsat" Solver.Unsat (Solver.solve s)

let test_subsume_pass () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ lit a; lit b ];
  Solver.add_clause s [ lit a; lit b; lit c ] (* subsumed by the above *);
  Solver.add_clause s [ nlit a; lit c ];
  let before = Solver.n_clauses s in
  Alcotest.(check bool) "a clause removed or strengthened" true
    (Solver.subsume_pass s >= 1);
  Alcotest.(check bool) "formula shrank" true (Solver.n_clauses s < before);
  Alcotest.check check_result "still sat" Solver.Sat (Solver.solve s);
  let v l = Solver.model_value s l in
  Alcotest.(check bool) "original clauses hold" true
    ((v (lit a) || v (lit b)) && ((not (v (lit a))) || v (lit c)))

let test_self_subsumption () =
  (* resolving [a; b] against [a; ~b; c] on b strengthens the latter to
     [a; c]: afterwards ~a propagates c directly *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ lit a; lit b ];
  Solver.add_clause s [ lit a; nlit b; lit c ];
  ignore (Solver.subsume_pass s);
  Alcotest.check check_result "~a sat" Solver.Sat
    (Solver.solve ~assumptions:[ nlit a ] s);
  Alcotest.(check bool) "~a forces b" true (Solver.model_value s (lit b));
  Alcotest.check check_result "~a & ~c refuted" Solver.Unsat
    (Solver.solve ~assumptions:[ nlit a; nlit c ] s)

let test_bve_pass () =
  (* x is a pure connective between a and b; resolving its two clauses
     gives [a; b], strictly smaller, so elimination fires.  The model
     must still be answered over the full original formula. *)
  let s = Solver.create () in
  let x = Solver.new_var s and a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit x; lit a ];
  Solver.add_clause s [ nlit x; lit b ];
  Alcotest.(check bool) "eliminated something" true (Solver.bve_pass s >= 1);
  Alcotest.(check bool) "eliminations counted" true (Solver.n_eliminated s >= 1);
  Alcotest.check check_result "sat" Solver.Sat (Solver.solve s);
  let v l = Solver.model_value s l in
  Alcotest.(check bool) "model extends over eliminated vars" true
    ((v (lit x) || v (lit a)) && ((not (v (lit x))) || v (lit b)))

let test_bve_respects_freeze () =
  let s = Solver.create () in
  let x = Solver.new_var s and a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit x; lit a ];
  Solver.add_clause s [ nlit x; lit b ];
  List.iter (Solver.freeze s) [ x; a; b ];
  Alcotest.(check int) "nothing eliminated" 0 (Solver.bve_pass s);
  Alcotest.(check bool) "x frozen" true (Solver.is_frozen s x);
  Alcotest.(check bool) "x not eliminated" false (Solver.is_eliminated s x)

let test_bve_reintroduce_on_assume () =
  (* naming an eliminated variable in an assumption must transparently
     reintroduce its stashed clauses and freeze it from then on *)
  let s = Solver.create () in
  let x = Solver.new_var s and a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit x; lit a ];
  Solver.add_clause s [ nlit x; lit b ];
  Alcotest.(check bool) "x eliminated" true
    (Solver.bve_pass s >= 1 && Solver.n_eliminated s >= 1);
  Alcotest.check check_result "assume x" Solver.Sat
    (Solver.solve ~assumptions:[ lit x ] s);
  Alcotest.(check bool) "stashed clause re-enforced: x -> b" true
    (Solver.model_value s (lit b));
  Alcotest.check check_result "x & ~b refuted by stashed clause" Solver.Unsat
    (Solver.solve ~assumptions:[ lit x; nlit b ] s);
  Alcotest.(check bool) "x frozen after naming" true (Solver.is_frozen s x)

let test_inprocess_install_unsat () =
  let s = pigeonhole_solver 7 in
  Inprocess.install ~every:16 s;
  Alcotest.check check_result "php(7,6) unsat with passes active" Solver.Unsat
    (Solver.solve s)

let test_inprocess_install_sat () =
  (* an implication chain with redundant long clauses: the passes may
     rewrite the formula but the unique model must survive *)
  let s = Solver.create () in
  let vs = Array.init 12 (fun _ -> Solver.new_var s) in
  for i = 0 to 10 do
    Solver.add_clause s [ nlit vs.(i); lit vs.(i + 1) ]
  done;
  Solver.add_clause s [ lit vs.(0) ];
  Solver.add_clause s [ nlit vs.(0); lit vs.(11); lit vs.(5) ];
  Solver.add_clause s [ nlit vs.(2); lit vs.(7); lit vs.(9) ];
  Inprocess.install ~every:16 s;
  Alcotest.check check_result "chain sat" Solver.Sat (Solver.solve s);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "x%d true" i)
        true
        (Solver.model_value s (lit v)))
    vs

let test_inprocess_run_passes () =
  (* run_passes fires all three immediately and reports the work *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  let x = Solver.new_var s in
  Solver.add_clause s [ lit a; lit b ];
  Solver.add_clause s [ lit a; lit b; lit c ] (* subsumed *);
  Solver.add_clause s [ lit x; lit c ];
  Solver.add_clause s [ nlit x; lit a ] (* x eliminable *);
  Alcotest.(check bool) "changes reported" true (Inprocess.run_passes s > 0);
  Alcotest.check check_result "still sat" Solver.Sat (Solver.solve s);
  let v l = Solver.model_value s l in
  Alcotest.(check bool) "all original clauses hold" true
    ((v (lit a) || v (lit b))
    && (v (lit a) || v (lit b) || v (lit c))
    && (v (lit x) || v (lit c))
    && ((not (v (lit x))) || v (lit a)))

let test_inprocess_incremental_assumptions () =
  (* frozen-variable interface under incremental use: variables named
     in assumptions must keep their meaning across calls even at an
     aggressive cadence *)
  let s = Solver.create () in
  let x = Solver.new_var s and y = Solver.new_var s and z = Solver.new_var s in
  Solver.add_clause s [ nlit x; lit y ];
  Solver.add_clause s [ nlit y; lit z ];
  Inprocess.install ~every:1 s;
  Alcotest.check check_result "x sat" Solver.Sat (Solver.solve ~assumptions:[ lit x ] s);
  Alcotest.(check bool) "x forces z" true (Solver.model_value s (lit z));
  Alcotest.check check_result "~z sat" Solver.Sat
    (Solver.solve ~assumptions:[ nlit z ] s);
  Alcotest.(check bool) "~z forces ~x" false (Solver.model_value s (lit x));
  Alcotest.check check_result "x & ~z unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ lit x; nlit z ] s);
  Alcotest.(check bool) "core mentions the assumptions" true
    (Solver.unsat_core s <> [])

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "unit chain" `Quick test_unit_propagation_chain;
    Alcotest.test_case "3sat" `Quick test_simple_3sat;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "assumption reuse" `Quick test_assumption_reuse;
    Alcotest.test_case "unsat core" `Quick test_unsat_core;
    Alcotest.test_case "unsat core falsified assumption" `Quick
      test_unsat_core_falsified_assumption;
    Alcotest.test_case "unsat core unconditional" `Quick test_unsat_core_unconditional;
    Alcotest.test_case "unsat core cleared" `Quick test_unsat_core_cleared;
    Alcotest.test_case "pb basic" `Quick test_pb_basic;
    Alcotest.test_case "pb conflict" `Quick test_pb_conflict;
    Alcotest.test_case "pb infeasible degree" `Quick test_pb_infeasible_degree;
    Alcotest.test_case "exactly one" `Quick test_exactly_one;
    Alcotest.test_case "pb pigeonhole" `Quick test_pb_pigeonhole;
    Alcotest.test_case "pb knapsack model" `Quick test_pb_knapsack_model_valid;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "luby" `Quick test_luby;
    Alcotest.test_case "incremental narrowing" `Quick test_incremental_narrowing;
    Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
    Alcotest.test_case "budget module" `Quick test_budget_module;
    Alcotest.test_case "budget resume to unsat" `Quick test_budget_resume_to_unsat;
    Alcotest.test_case "budget resume to sat" `Quick test_budget_resume_to_sat;
    Alcotest.test_case "budget shared across calls" `Quick test_budget_shared_across_calls;
    Alcotest.test_case "budget timeout" `Quick test_budget_timeout;
    Alcotest.test_case "at-most-one exhaustive" `Quick test_at_most_one_exhaustive;
    Alcotest.test_case "statistics" `Quick test_statistics_monotone;
    Alcotest.test_case "vec" `Quick test_vec_operations;
    Alcotest.test_case "veci" `Quick test_veci_operations;
    Alcotest.test_case "order heap" `Quick test_order_heap;
    Alcotest.test_case "vivify pass" `Quick test_vivify_pass;
    Alcotest.test_case "vivify preserves unsat" `Quick test_vivify_preserves_unsat;
    Alcotest.test_case "subsume pass" `Quick test_subsume_pass;
    Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
    Alcotest.test_case "bve pass" `Quick test_bve_pass;
    Alcotest.test_case "bve respects freeze" `Quick test_bve_respects_freeze;
    Alcotest.test_case "bve reintroduce on assume" `Quick
      test_bve_reintroduce_on_assume;
    Alcotest.test_case "inprocess install unsat" `Quick test_inprocess_install_unsat;
    Alcotest.test_case "inprocess install sat" `Quick test_inprocess_install_sat;
    Alcotest.test_case "inprocess run_passes" `Quick test_inprocess_run_passes;
    Alcotest.test_case "inprocess incremental assumptions" `Quick
      test_inprocess_incremental_assumptions;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_pb_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_unsat_core_valid;
  ]
