lib/rt/analysis.mli: Model
