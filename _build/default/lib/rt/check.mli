(** Independent feasibility checker.

    Re-derives schedulability of a complete allocation from first
    principles — placement restrictions, separation, memory, barred
    gateways, route validity (including the [v(h)] endpoint condition),
    TDMA slot sizing, task response times and end-to-end message
    latencies — without using any data produced by the SAT encoder.
    Every allocation the optimizer returns is passed through here. *)

open Model

type violation =
  | Placement_not_allowed of { task : int; ecu : int }
  | Separation_violated of { task_a : int; task_b : int; ecu : int }
  | Memory_exceeded of { ecu : int; used : int; capacity : int }
  | Barred_ecu_used of { task : int; ecu : int }
  | Task_deadline_miss of { task : int; response : int option; deadline : int }
  | Invalid_route of { msg : int; reason : string }
  | Message_deadline_miss of { msg : int; latency : int option; deadline : int }
  | Slot_too_small of { medium : int; ecu : int; slot : int; needed : int }

val pp_violation : Format.formatter -> violation -> unit

val check_placement : problem -> allocation -> violation list
val check_routes : problem -> allocation -> violation list
val check_tasks : problem -> allocation -> violation list
val check_slots : problem -> allocation -> violation list
val check_messages : problem -> allocation -> violation list

val check : problem -> allocation -> violation list
(** All checks; empty list = feasible. *)

val is_feasible : problem -> allocation -> bool

val pp_report : Format.formatter -> violation list -> unit
