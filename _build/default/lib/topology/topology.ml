(* Hierarchical architecture topology (§4).

   Media are nodes of a graph; two media are adjacent when they share an
   ECU — that ECU is the *gateway* linking them.  Following the paper we
   allow arbitrary networks but at most one gateway ECU between any two
   media.  Messages travel along *media paths*; the set of candidate
   routes for the encoder is the set of simple paths of this graph, and
   the paper's *path closures* (fig. 1) are the prefix sets of the
   maximal simple paths. *)

type t = {
  n_ecus : int;
  media_ecus : int list array; (* medium id -> connected ECUs *)
}

exception Invalid_topology of string

let create ~n_ecus ~media =
  let media_ecus = Array.of_list media in
  Array.iteri
    (fun k ecus ->
      List.iter
        (fun e ->
          if e < 0 || e >= n_ecus then
            raise
              (Invalid_topology
                 (Printf.sprintf "medium %d references unknown ECU %d" k e)))
        ecus;
      if List.length (List.sort_uniq Int.compare ecus) <> List.length ecus then
        raise (Invalid_topology (Printf.sprintf "medium %d lists an ECU twice" k)))
    media_ecus;
  (* at most one gateway between any two media *)
  let n = Array.length media_ecus in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let shared =
        List.filter (fun e -> List.mem e media_ecus.(b)) media_ecus.(a)
      in
      if List.length shared > 1 then
        raise
          (Invalid_topology
             (Printf.sprintf "media %d and %d share %d ECUs (max one gateway)" a b
                (List.length shared)))
    done
  done;
  { n_ecus; media_ecus }

let n_media t = Array.length t.media_ecus
let ecus_of_medium t k = t.media_ecus.(k)
let medium_has_ecu t k e = List.mem e t.media_ecus.(k)

(* The gateway ECU shared by two media, if any. *)
let gateway_between t a b =
  if a = b then None
  else
    List.find_opt (fun e -> List.mem e t.media_ecus.(b)) t.media_ecus.(a)

let adjacent t a b = gateway_between t a b <> None

(* Media an ECU is attached to. *)
let media_of_ecu t e =
  let acc = ref [] in
  Array.iteri (fun k ecus -> if List.mem e ecus then acc := k :: !acc) t.media_ecus;
  List.rev !acc

(* ECUs attached to more than one medium. *)
let gateway_ecus t =
  List.init t.n_ecus Fun.id
  |> List.filter (fun e -> List.length (media_of_ecu t e) > 1)

(* All simple paths (non-repeating media sequences) starting from each
   medium, of length >= 1.  On the architectures of the paper these
   number in the dozens at most. *)
let simple_paths t =
  let n = n_media t in
  let results = ref [] in
  let rec extend path last =
    results := List.rev path :: !results;
    for next = 0 to n - 1 do
      if (not (List.mem next path)) && adjacent t last next then
        extend (next :: path) next
    done
  in
  for k = 0 to n - 1 do
    extend [ k ] k
  done;
  List.rev !results

(* Maximal simple paths: those that cannot be extended at the tail. *)
let maximal_paths t =
  let n = n_media t in
  simple_paths t
  |> List.filter (fun path ->
         let last = List.nth path (List.length path - 1) in
         not
           (List.exists
              (fun next -> (not (List.mem next path)) && adjacent t last next)
              (List.init n Fun.id)))

(* Path closures as in fig. 1: for each maximal simple path, the set of
   its non-empty prefixes.  [path_closures t] returns the deduplicated
   closure list (the paper's PH, without the empty closure ph0). *)
let prefixes path =
  let rec go acc prefix = function
    | [] -> List.rev acc
    | k :: rest ->
      let prefix = prefix @ [ k ] in
      go (prefix :: acc) prefix rest
  in
  go [] [] path

let path_closures t =
  maximal_paths t
  |> List.map prefixes
  |> List.sort_uniq compare

(* Is [path] a valid route: consecutive media adjacent, no repeats? *)
let valid_path t path =
  let rec distinct = function
    | [] -> true
    | k :: rest -> (not (List.mem k rest)) && distinct rest
  in
  let rec chained = function
    | a :: (b :: _ as rest) -> adjacent t a b && chained rest
    | _ -> true
  in
  match path with
  | [] -> false
  | ks -> List.for_all (fun k -> k >= 0 && k < n_media t) ks && distinct ks && chained ks

(* The paper's v(h) placement condition: the sender must sit on the
   first medium (but, on multi-hop paths, not on the gateway into the
   second), the receiver on the last (not on the gateway from the
   second-to-last).  Returns the admissible sender and receiver ECUs. *)
let endpoint_ecus t path =
  match path with
  | [] -> invalid_arg "endpoint_ecus: empty path"
  | [ k ] -> (ecus_of_medium t k, ecus_of_medium t k)
  | first :: second :: _ ->
    let last = List.nth path (List.length path - 1) in
    let before_last = List.nth path (List.length path - 2) in
    let senders =
      match gateway_between t first second with
      | Some g -> List.filter (fun e -> e <> g) (ecus_of_medium t first)
      | None -> ecus_of_medium t first
    in
    let receivers =
      match gateway_between t before_last last with
      | Some g -> List.filter (fun e -> e <> g) (ecus_of_medium t last)
      | None -> ecus_of_medium t last
    in
    (senders, receivers)

(* Gateways crossed by a path, in order. *)
let gateways_of_path t path =
  let rec go = function
    | a :: (b :: _ as rest) ->
      (match gateway_between t a b with
      | Some g -> g :: go rest
      | None -> raise (Invalid_topology "non-adjacent media in path"))
    | _ -> []
  in
  go path

let pp_path ppf path =
  Fmt.pf ppf "\"%a\"" Fmt.(list ~sep:nop (fun ppf k -> Fmt.pf ppf "k%d" k)) path

let pp_closure ppf closure =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_path) closure
