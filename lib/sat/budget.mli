(** Composable resource budgets for the solver and every layer above it.

    A budget bundles a wall-clock deadline, a conflict limit, a
    propagation limit and a pluggable [should_stop] hook into one
    tracker that can be shared across several [Solver.solve] calls —
    the optimizer threads a single budget through its whole probe
    sequence, so the limits govern the total spend, not one probe.

    The solver charges consumed conflicts and propagations to the
    budget and polls {!exhausted} every {!check_every} conflicts; when
    the budget trips, the search returns a clean [Unknown] with the
    solver state intact, so a later call with a larger (or no) budget
    resumes where it left off, keeping everything learned so far. *)

type t

val create :
  ?timeout:float ->
  ?max_conflicts:int ->
  ?max_propagations:int ->
  ?should_stop:(unit -> bool) ->
  ?check_every:int ->
  unit ->
  t
(** [create ()] is an unlimited budget; each optional limit arms one
    tripwire.  [timeout] is in wall-clock seconds, measured from this
    call.  [should_stop] is polled at every budget check and may
    implement any external cancellation policy (cooperative shutdown,
    fault injection, ...).  [check_every] (default 32, clamped to
    >= 1) is the polling cadence in conflicts. *)

val unlimited : unit -> t

val is_unlimited : t -> bool
(** No tripwire armed: the budget can never trip. *)

val check_every : t -> int

val charge : t -> conflicts:int -> propagations:int -> unit
(** Account consumed work against the budget.  Deltas, not totals. *)

val exhausted : t -> bool
(** Full check: counters, wall clock and the [should_stop] hook.  Once
    a budget has tripped it stays exhausted (the hook is not polled
    again). *)

val tripped : t -> bool
(** Has this budget already tripped?  Never polls the hook or the
    clock — cheap, and safe to call from tight loops. *)

val remaining_conflicts : t -> int
(** Conflicts left before the conflict tripwire fires; [max_int] when
    unarmed, [0] once tripped. *)

val spent_conflicts : t -> int
val spent_propagations : t -> int

val elapsed : t -> float
(** Wall-clock seconds since the budget was created. *)

val derive : ?should_stop:(unit -> bool) -> t -> t
(** [derive ?should_stop parent] is a fresh budget armed with the
    parent's {e remaining} wall-clock, conflict and propagation
    headroom (an already-tripped parent yields an immediately exhausted
    child).  The parent's [should_stop] hook is {b not} inherited —
    user hooks need not be thread-safe, so in a portfolio only the
    coordinator polls the parent while each worker polls the
    [should_stop] given here (typically an atomic cancel flag).
    Charges to the child are not propagated back; the caller accounts
    work to the parent explicitly. *)

val pp : Format.formatter -> t -> unit
