(** Deterministic splitmix64 generator: same seed, same stream,
    independent of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [[0, bound)]; [bound > 0]. *)

val range : t -> int -> int -> int
(** Uniform in [[lo, hi]] inclusive. *)

val pick : t -> 'a list -> 'a
(** Uniform element; raises [Invalid_argument] on the empty list. *)

val bool : t -> float -> bool
(** [true] with (approximately) the given probability. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle (fresh list). *)
