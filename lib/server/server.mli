(** Allocation-as-a-service: a long-running daemon core that holds
    {e warm incremental sessions} per client and serves solve /
    what-if / explain / repair traffic over a newline-delimited JSON
    protocol (Unix-domain socket by default, TCP optionally).

    Why a server at all: [BENCH_explain.json] shows incremental
    what-if re-solves are ~6x faster than fresh solves and
    [BENCH_repair.json] shows warm repair is >= 2x faster — wins that
    only compound when the encoded formula and its solver stay
    resident between requests.  The daemon keeps them resident:

    - {b Session table.}  [open] a problem once (inline problem text,
      a server-side problem file, or a named workload) and get a
      session id; subsequent [solve] / [whatif] / [explain] / [repair]
      requests run against that session's live state.  The table is
      bounded ([max_sessions]); opening past the bound evicts the
      least-recently-used {e idle} session (a busy session — one
      mid-request — is never evicted), and requests against an evicted
      or closed id fail with a clean [unknown_session] error.
    - {b Encode cache.}  Sessions are keyed by a canonical problem
      hash (the round-tripping problem-file rendering plus the
      encoding options); clients opening identical problems share one
      encoded formula and one incremental
      {!Taskalloc_explain.Explain.Whatif} session, so the second
      client's [open] is a cache hit that pays no encode.  A session
      whose problem diverges from the shared bundle (a successful
      [repair] changes the problem) detaches first; shared state never
      tears.
    - {b Concurrency.}  A fixed pool of OCaml 5 domains executes
      requests.  Requests on one session (or on one shared bundle)
      serialize under that session's mutex — the incremental-solver
      invariants from the CEGAR and inprocessing work (DESIGN.md
      §4g-4i) assume single-threaded sessions — while requests on
      distinct sessions run in parallel; a request may additionally
      use the in-request [--jobs]/[--parallel] machinery, which
      spawns its own worker domains below this pool.
    - {b Admission control.}  Every request may carry a
      [deadline_ms]; the serving layer converts it to an anytime
      {!Taskalloc_sat.Budget.t} armed with the time {e remaining} when
      the request leaves the queue, so queue wait counts against the
      deadline and every request gets an answer by it — optimal,
      anytime-bounded (with gap), heuristic, or a clean unknown.  The
      work queue is bounded; when it is full, new requests are
      rejected immediately with an [overloaded] error instead of
      piling up.
    - {b Lifecycle.}  [SIGPIPE] is ignored (a client disconnecting
      mid-request costs that client its response, never the daemon);
      {!stop} (wired to SIGTERM/SIGINT by the executable) stops
      accepting, drains the queue, answers every in-flight request,
      closes client connections, joins the worker domains and removes
      the socket file.  Observability sinks flush through the
      executable's [at_exit] paths as for every other CLI.

    {2 Protocol}

    One JSON object per line in, one per line out.  Every request has
    a ["kind"] and may carry an ["id"] (echoed verbatim in the
    response).  Responses carry ["ok"] — [true] with kind-specific
    payload, or [false] with ["error"] (a stable code:
    [parse], [bad_request], [unknown_kind], [unknown_session],
    [invalid_problem], [invalid_event], [infeasible], [overloaded],
    [shutting_down], [internal]) and a human ["message"].

    Kinds: [ping], [open] (["workload"]+["seed"] | ["problem"] |
    ["problem_file"]; optional ["lazy"], ["cache"]), [solve]
    (["objective"], ["jobs"], ["parallel"], ["fallback"]), [whatif]
    (["deltas"], the {!Taskalloc_explain.Explain.Whatif.parse_deltas}
    grammar), [explain] (["max_relaxations"], ["jobs"]), [repair]
    (["event"], the scenario grammar; ["allow_shed"], ["explain"]),
    [stats], [close].  [solve], [whatif], [explain] and [repair]
    accept ["deadline_ms"] and ["max_conflicts"].  See the README's
    "Running as a service" section for a transcript. *)

open Taskalloc_rt

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  workers : int;  (** worker domains executing requests (>= 1) *)
  max_sessions : int;  (** session-table bound; LRU idle eviction *)
  queue_depth : int;  (** bounded work queue; beyond it: [overloaded] *)
  options : Taskalloc_core.Encode.options option;
      (** default encoding options for [open] ([None] =
          {!Taskalloc_core.Encode.default_options}); a request's
          ["lazy"] field overrides per session *)
  verbose : bool;  (** log one line per request to stderr *)
}

val default_config : config
(** Unix socket ["taskallocd.sock"], 2 workers, 64 sessions, queue 128. *)

val named_workloads : (string * (int -> Model.problem)) list
(** The named workload table shared with the [taskalloc] CLI:
    [(name, fun seed -> problem)]. *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale Unix socket file first).  The
    socket exists when this returns, so a client may connect before
    {!run} is entered; pending connections sit in the backlog.  Raises
    [Unix.Unix_error] on bind failures. *)

val run : t -> unit
(** Serve until {!stop}: spawns the worker domains, accepts
    connections (one lightweight thread per connection, blocking I/O),
    and on stop drains the queue, answers everything in flight, closes
    connections, joins workers, and cleans up the socket. *)

val stop : t -> unit
(** Request shutdown.  Only sets an atomic flag — safe to call from a
    signal handler or another domain; {!run} notices within its accept
    poll interval (<= 0.2s). *)

val stats_json : t -> Json.t
(** The same snapshot the [stats] request returns: uptime, session /
    cache / queue occupancy, request and error totals, cache hit and
    eviction counts, and latency histograms overall and per kind.
    Counts are authoritative server-side state (kept under the stats
    mutex), mirrored into {!Taskalloc_obs.Obs.Metrics} when metrics
    are enabled. *)
