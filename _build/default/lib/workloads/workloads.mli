(** Named workload instances backing the benchmark suite.  All are
    deterministic in their seed. *)

open Taskalloc_rt

val chain_split : int -> int list
(** Split [n >= 2] tasks into chains of 2-4 tasks. *)

val tindell43 : ?seed:int -> unit -> Model.problem
(** 43 tasks / 12 chains / 8 ECUs on a token ring — the shape of [5]
    (Table 1, Table 3 rightmost column). *)

val tindell43_can : ?seed:int -> unit -> Model.problem
(** The same task-set shape on a CAN bus (Table 1, second row). *)

val task_scaling : ?seed:int -> n:int -> unit -> Model.problem
(** Task-scaling series of Table 3 (n in 7..43). *)

val arch_scaling : ?seed:int -> n_ecus:int -> unit -> Model.problem
(** Architecture-scaling series of Table 2: 30 tasks on [n_ecus]. *)

type hier = A | B | C

val hierarchical : ?seed:int -> ?n_tasks:int -> hier -> Model.problem
(** Table 4: the task set on architectures A/B/C of Fig. 2. *)

val hierarchical_c_can : ?seed:int -> ?n_tasks:int -> unit -> Model.problem
(** Architecture C with its upper bus replaced by CAN (§6, last
    experiment). *)

(** {1 Small instances for tests and demos} *)

val small : ?seed:int -> ?n_ecus:int -> ?n_tasks:int -> unit -> Model.problem

val small_jittery : ?seed:int -> ?n_ecus:int -> ?n_tasks:int -> unit -> Model.problem
(** Like {!small}, with per-task release jitter (up to 5) and blocking
    factors (up to 3). *)

val small_can : ?seed:int -> ?n_ecus:int -> ?n_tasks:int -> unit -> Model.problem
val small_hierarchical : ?seed:int -> ?n_tasks:int -> hier -> Model.problem
