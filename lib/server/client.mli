(** Small blocking client for the [taskallocd] line protocol, used by
    the [taskalloc client] subcommand, the tests and the bench
    harness. *)

type t

val connect : Server.listen -> t
(** Connect to a running daemon.  Raises [Unix.Unix_error] if nothing
    listens there. *)

val wait_ready : ?timeout:float -> Server.listen -> bool
(** Poll until a connection attempt succeeds (daemon is accepting), up
    to [timeout] seconds (default 5.0).  [true] on success. *)

val request : t -> Json.t -> Json.t
(** Send one request object, read one response line, parse it.  Raises
    [End_of_file] if the server closed the connection and
    [Json.Parse_error] on a malformed response. *)

val request_raw : t -> string -> string
(** Send one raw line (appending ["\n"]), return the raw response
    line.  For driving the protocol's error paths with deliberately
    malformed input. *)

val send : t -> Json.t -> unit
(** Send one request without waiting for the answer. *)

val recv : t -> Json.t
(** Read and parse one response line.  With {!send}, this drives the
    streaming [watch] verb: one send, then a [recv] per progress event
    until the line carrying the final answer (it has an ["ok"]
    member). *)

val close : t -> unit
