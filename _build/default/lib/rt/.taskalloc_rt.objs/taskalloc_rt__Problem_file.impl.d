lib/rt/problem_file.ml: Array Fmt Int List Model String
