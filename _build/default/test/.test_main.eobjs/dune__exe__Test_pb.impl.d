test/test_pb.ml: Alcotest Array Circuits Hashtbl List Lit Opb Pb Printf QCheck QCheck_alcotest Solver Taskalloc_pb Taskalloc_sat
