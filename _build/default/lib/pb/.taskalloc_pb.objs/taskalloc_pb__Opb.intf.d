lib/pb/opb.mli: Format Hashtbl Solver Taskalloc_sat
