(** Response-time analysis (§2): the fixed points of eqs. 1-3 with
    release jitter on the interfering side, plus whole-system analysis
    of an allocation.  Serves both as a standalone schedulability
    analyzer and as the independent checker behind {!Check}. *)

open Model

val ceil_div : int -> int -> int
(** [ceil_div a b] = max(0, ceil(a / b)) for [b > 0]. *)

val fixpoint : base:int -> limit:int -> (int -> int) -> int option
(** Iterate [r <- base + f r] from [base]; [None] once [r > limit]
    (deadline miss) or after a large iteration guard. *)

val task_response_time :
  ?blocking:int ->
  wcet:int ->
  deadline:int ->
  interferers:(int * int * int) list ->
  unit ->
  int option
(** Eq. 1, plus an optional blocking factor added once.  Interferers
    are higher-priority tasks on the same ECU as
    [(wcet, period, jitter)] triples. *)

val priority_bus_response_time :
  rho:int -> limit:int -> interferers:(int * int * int) list -> int option
(** Eq. 2, for CAN-like buses; interferers as [(rho, period, jitter)]. *)

val tdma_response_time :
  rho:int ->
  limit:int ->
  round:int ->
  own_slot:int ->
  interferers:(int * int * int) list ->
  int option
(** Eq. 3: same-station queueing plus the per-round blocking
    [ceil(r/Lambda) * (Lambda - own_slot)].  Requires
    [round >= own_slot > ... >= 0]. *)

(** {1 Whole-system analysis} *)

val tasks_on : problem -> allocation -> int -> task list

val all_task_response_times : problem -> allocation -> int option array
(** Response time of every task under the allocation's priority order;
    [None] marks a deadline miss. *)

val messages_on : problem -> allocation -> int -> message list

val message_hop_jitter : problem -> allocation -> message -> int -> int
(** Inherited jitter of a message entering a medium: the §4 chain, with
    each upstream hop bounded by the message deadline (the paper's safe
    approximation). *)

val message_response_on : problem -> allocation -> message -> int -> int option
(** Response time of a message on one medium of its route. *)

val message_end_to_end :
  problem -> allocation -> message -> ((int * int) list * int) option
(** Per-hop response times and total end-to-end latency including
    gateway service costs; [None] on any hop miss.  Local routes have
    latency 0. *)
