(* Binary-search optimization over a SAT-encoded integer cost (§5.2).

   [SOLVE phi] is one call to the CDCL+PB solver; [minimize] wraps it in
   the paper's BIN_SEARCH loop:

     L := 0;  R := SOLVE(phi)
     while L < R do
       M := (L + R) / 2
       K := SOLVE(phi and L <= i <= M)
       if K = -1 then L := M + 1 else R := K

   (We advance L to M+1 rather than the paper's M, which fails to
   terminate when R = L + 1; the invariant "optimum in [L, R]" is
   preserved because an UNSAT interval [L, M] proves optimum > M.)

   Two modes reproduce the paper's §7 observation about reusing learned
   clauses across the probe sequence:

   - [Fresh]: every probe builds the formula from scratch in a new
     solver — the baseline the paper used for its tables;
   - [Incremental]: the formula is built once; each upper bound
     [cost <= M] is guarded by a fresh activation literal assumed for
     that probe only, and monotone lower bounds are added permanently.
     All clauses learned in earlier probes remain, pruning later ones —
     the paper reports a factor >= 2 from exactly this reuse.

   The loop is *anytime*: a shared {!Budget.t} governs the total spend
   across all probes, and when it trips mid-search the loop stops and
   reports the best model found so far together with the lower bound
   already proved, instead of discarding the incumbent.  Budget expiry
   is an answer, never an exception. *)

open Taskalloc_sat
open Taskalloc_pb
open Taskalloc_bv
module Budget = Taskalloc_sat.Budget
module Obs = Taskalloc_obs.Obs

type mode = Fresh | Incremental

type stats = {
  mutable probes : int;
  mutable sat_probes : int;
  mutable unsat_probes : int;
  mutable interrupted_probes : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable bool_vars : int;
  mutable literals : int;
  mutable time_s : float;
}

let empty_stats () =
  {
    probes = 0;
    sat_probes = 0;
    unsat_probes = 0;
    interrupted_probes = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    bool_vars = 0;
    literals = 0;
    time_s = 0.;
  }

let pp_stats ppf s =
  Fmt.pf ppf "probes=%d (sat=%d unsat=%d) conflicts=%d vars=%d lits=%d time=%.2fs"
    s.probes s.sat_probes s.unsat_probes s.conflicts s.bool_vars s.literals s.time_s

type resolution = Optimal | Feasible_budget_exhausted | Infeasible | Unknown

let pp_resolution ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible_budget_exhausted -> Fmt.string ppf "feasible (budget exhausted)"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unknown -> Fmt.string ppf "unknown (budget exhausted)"

type 'a anytime = {
  incumbent : (int * 'a) option;
  lower_bound : int;
  upper_bound : int option;
  resolution : resolution;
}

let gap a =
  match a.incumbent with
  | None -> None
  | Some (ub, _) ->
    if ub <= a.lower_bound then Some 0.
    else Some (float_of_int (ub - a.lower_bound) /. float_of_int ub)

(* One SAT probe; records statistics.  Never raises: budget expiry is
   reported as [Solver.Unknown].  Counters are charged from the
   per-solve deltas ([Solver.last_solve_stats]), not by differencing
   the solver's cumulative counters here: an incremental session
   reused across minimize runs (or a what-if session) carries history,
   and cumulative reads would cross-contaminate the probe totals. *)
let probe stats ?(assumptions = []) ?max_conflicts ~budget ctx =
  stats.probes <- stats.probes + 1;
  let s = Bv.solver ctx in
  let result =
    Obs.span "opt.probe" (fun () -> Solver.solve ~assumptions ?max_conflicts ~budget s)
  in
  let d = Solver.last_solve_stats s in
  stats.conflicts <- stats.conflicts + d.Solver.d_conflicts;
  stats.decisions <- stats.decisions + d.Solver.d_decisions;
  stats.propagations <- stats.propagations + d.Solver.d_propagations;
  stats.bool_vars <- max stats.bool_vars (Solver.n_vars s);
  stats.literals <- max stats.literals (Solver.n_literals s);
  if Obs.metrics_on () then begin
    Obs.Metrics.observe "opt.probe_conflicts" d.Solver.d_conflicts;
    Obs.Metrics.incr "opt.probes"
  end;
  (match result with
  | Solver.Sat -> stats.sat_probes <- stats.sat_probes + 1
  | Solver.Unsat -> stats.unsat_probes <- stats.unsat_probes + 1
  | Solver.Unknown -> stats.interrupted_probes <- stats.interrupted_probes + 1);
  result

(* Probe-point selection strategies for the search loop.  Bisection is
   the paper's reference; the others exist for portfolio diversity —
   racing them changes the *total* number of probes, not just luck, so
   a portfolio can win even on a single core:
   - [Top_down] probes best-1 and proves optimality in one Unsat probe
     whenever the current incumbent is already optimal;
   - [Low_quartile] bisects pessimistically, trading larger Sat
     improvements for more Unsat probes (fast lower-bound growth). *)
type strategy = Bisect | Top_down | Low_quartile

let strategy_of_worker i =
  match i mod 3 with 1 -> Top_down | 2 -> Low_quartile | _ -> Bisect

(* next probe point in [lower, best-1]; precondition lower < best *)
let next_m strategy ~lower ~best =
  match strategy with
  | Bisect -> (lower + best) / 2
  | Top_down -> best - 1
  | Low_quartile -> lower + ((best - lower) / 4)

(* Minimize the cost term produced by [build].  [on_sat ctx cost] is
   invoked on every improving model so the caller can extract its
   solution; the last extraction corresponds to the incumbent.
   [config], when given, diversifies every solver this run constructs
   (portfolio workers pass their own).

   [assumptions] are assumed on every probe: the minimum found is the
   minimum *under those assumptions*.  [persist_bounds] (default true)
   controls whether proved lower bounds [cost >= l] are asserted
   permanently.  That assertion is sound for a dedicated solver, but
   poison for a session shared with other clients (a what-if or repair
   session probed under varying assumptions): a bound proved under
   this run's assumptions need not hold without them.  Such callers
   pass [~persist_bounds:false] — learnt clauses are still kept (they
   never depend on assumptions), only the explicit bound assertions
   are suppressed. *)
let minimize_seq ?(mode = Incremental) ?(strategy = Bisect) ?config
    ?(assumptions = []) ?(persist_bounds = true) ?refine
    ?max_conflicts ?(budget = Budget.unlimited ()) ?(gap_tol = 0.)
    ~(build : unit -> Bv.ctx * Bv.t) ~(on_sat : Bv.ctx -> int -> 'a) () =
  let stats = empty_stats () in
  let t0 = Unix.gettimeofday () in
  (* CEGAR interlock: on a lazy encoding a [Sat] probe is only final
     once [refine] reports 0 — each refinement grows the formula in
     place (or, in [Fresh] mode, in the probe's own rebuild), so the
     same probe is simply re-run until the model survives the exact
     check.  Unsat/Unknown answers pass through: the lazy formula is a
     relaxation, so they are already final. *)
  let probe stats ?assumptions ?max_conflicts ~budget ctx =
    match refine with
    | None -> probe stats ?assumptions ?max_conflicts ~budget ctx
    | Some refine ->
      let rec go () =
        match probe stats ?assumptions ?max_conflicts ~budget ctx with
        | Solver.Sat ->
          if Obs.span "cegar.refine" (fun () -> refine ctx) > 0 then go ()
          else Solver.Sat
        | r -> r
      in
      go ()
  in
  let finish outcome =
    stats.time_s <- Unix.gettimeofday () -. t0;
    (outcome, stats)
  in
  let infeasible =
    { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Infeasible }
  in
  let unknown =
    { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Unknown }
  in
  (* BIN_SEARCH over [lower, best_cost], shared by both modes through
     [reprobe : lower -> m -> Sat of new cost | Unsat | Unknown]. *)
  let run_search ~first_cost ~first_payload ~reprobe =
    let best_cost = ref first_cost in
    let best = ref first_payload in
    let lower = ref 0 in
    let interrupted = ref false in
    let converged () =
      !lower >= !best_cost
      || float_of_int (!best_cost - !lower) <= gap_tol *. float_of_int !best_cost
    in
    (* bound/incumbent/gap timeline: one marker per probe outcome in
       the trace, plus a numeric sample to the installed hook so a
       live watcher (the daemon's [watch] verb, [--progress]) sees the
       incumbent/lower-bound/gap trajectory as it happens *)
    let timeline outcome =
      let gap =
        float_of_int (!best_cost - !lower) /. float_of_int (max !best_cost 1)
      in
      if Obs.tracing_on () then
        Obs.instant "opt.bound"
          ~attrs:
            [
              ("outcome", outcome);
              ("lower", string_of_int !lower);
              ("incumbent", string_of_int !best_cost);
              ("gap", Printf.sprintf "%g" gap);
            ];
      if Obs.sample_hook_installed () then
        Obs.emit_sample "opt.bound"
          [
            ("lower", float_of_int !lower);
            ("incumbent", float_of_int !best_cost);
            ("gap", gap);
          ]
    in
    timeline "first_sat";
    while (not !interrupted) && not (converged ()) do
      let m = next_m strategy ~lower:!lower ~best:!best_cost in
      (match reprobe !lower m with
      | `Sat (k, payload) ->
        best_cost := k;
        best := payload;
        timeline "sat"
      | `Unsat ->
        lower := m + 1;
        timeline "unsat"
      | `Unknown ->
        interrupted := true;
        timeline "interrupted")
    done;
    let resolution =
      if !lower >= !best_cost then Optimal else Feasible_budget_exhausted
    in
    {
      incumbent = Some (!best_cost, !best);
      lower_bound = (if resolution = Optimal then !best_cost else !lower);
      upper_bound = Some !best_cost;
      resolution;
    }
  in
  let apply_config ctx =
    match config with
    | None -> ()
    | Some c -> Solver.set_config (Bv.solver ctx) c
  in
  match mode with
  | Incremental -> (
    let ctx, cost = build () in
    apply_config ctx;
    match probe stats ~assumptions ?max_conflicts ~budget ctx with
    | Solver.Unsat -> finish infeasible
    | Solver.Unknown -> finish unknown
    | Solver.Sat ->
      let first_cost = Bv.model_int ctx cost in
      let first_payload = on_sat ctx first_cost in
      (* one incremental bound-probe session for the whole descent:
         each probed upper bound [cost <= m] is a reified comparator
         assumed for that probe only, cached so a revisited bound costs
         nothing to re-install.  No per-probe activation variable and no
         retirement clause — every clause learnt in one probe keeps
         pruning all later ones, and the comparator circuits stay
         reusable across probes (and across what-if queries driving the
         same session). *)
      let bound_bits = Hashtbl.create 16 in
      let bound_bit m =
        match Hashtbl.find_opt bound_bits m with
        | Some b -> b
        | None ->
          let b = Bv.le_const ctx cost m in
          Hashtbl.replace bound_bits m b;
          b
      in
      let reprobe lower m =
        ignore lower;
        match bound_bit m with
        | Circuits.Zero ->
          (* the comparator is constant-false: no solve needed *)
          if persist_bounds then Bv.assert_ ctx (Bv.ge_const ctx cost (m + 1));
          `Unsat
        | (Circuits.One | Circuits.Lit _) as b -> (
          let assumptions =
            assumptions @ (match b with Circuits.Lit g -> [ g ] | _ -> [])
          in
          match probe stats ~assumptions ?max_conflicts ~budget ctx with
          | Solver.Sat ->
            let k = Bv.model_int ctx cost in
            assert (k <= m);
            `Sat (k, on_sat ctx k)
          | Solver.Unsat ->
            (* the lower bound is entailed from now on (under this
               run's assumptions): add permanently when allowed *)
            if persist_bounds then
              Bv.assert_ ctx (Bv.ge_const ctx cost (m + 1));
            `Unsat
          | Solver.Unknown -> `Unknown)
      in
      finish (run_search ~first_cost ~first_payload ~reprobe))
  | Fresh -> (
    (* first probe: unconstrained.  [assumptions], if any, must refer
       to variables [build] creates deterministically (the clause
       sharing contract), so they mean the same in every rebuild. *)
    let ctx0, cost0 = build () in
    apply_config ctx0;
    match probe stats ~assumptions ?max_conflicts ~budget ctx0 with
    | Solver.Unsat -> finish infeasible
    | Solver.Unknown -> finish unknown
    | Solver.Sat ->
      let first_cost = Bv.model_int ctx0 cost0 in
      let first_payload = on_sat ctx0 first_cost in
      let reprobe lower m =
        let ctx, cost = build () in
        apply_config ctx;
        Bv.assert_ ctx (Bv.ge_const ctx cost lower);
        Bv.assert_ ctx (Bv.le_const ctx cost m);
        match probe stats ~assumptions ?max_conflicts ~budget ctx with
        | Solver.Sat ->
          let k = Bv.model_int ctx cost in
          `Sat (k, on_sat ctx k)
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
      in
      finish (run_search ~first_cost ~first_payload ~reprobe))

(* -- portfolio mode ---------------------------------------------------- *)

module Portfolio = Taskalloc_portfolio.Portfolio

(* Merge the anytime answers of workers that all ran to completion (or
   cancellation) without any one concluding: bounds combine soundly —
   every proved lower bound holds, every incumbent is feasible. *)
let combine_anytime results =
  let lb = ref 0 and best = ref None and any_infeasible = ref false in
  Array.iter
    (function
      | None -> ()
      | Some ((a : _ anytime), _) ->
        if a.resolution = Infeasible then any_infeasible := true;
        if a.lower_bound > !lb then lb := a.lower_bound;
        (match a.incumbent with
        | Some (c, p) when (match !best with Some (c', _) -> c < c' | None -> true)
          ->
          best := Some (c, p)
        | _ -> ()))
    results;
  if !any_infeasible then
    { incumbent = None; lower_bound = !lb; upper_bound = None; resolution = Infeasible }
  else
    match !best with
    | None ->
      { incumbent = None; lower_bound = !lb; upper_bound = None; resolution = Unknown }
    | Some (c, _) when !lb >= c ->
      { incumbent = !best; lower_bound = c; upper_bound = Some c; resolution = Optimal }
    | Some (c, _) ->
      {
        incumbent = !best;
        lower_bound = !lb;
        upper_bound = Some c;
        resolution = Feasible_budget_exhausted;
      }

let combine_stats results =
  let acc = empty_stats () in
  Array.iter
    (function
      | None -> ()
      | Some (_, (s : stats)) ->
        acc.probes <- acc.probes + s.probes;
        acc.sat_probes <- acc.sat_probes + s.sat_probes;
        acc.unsat_probes <- acc.unsat_probes + s.unsat_probes;
        acc.interrupted_probes <- acc.interrupted_probes + s.interrupted_probes;
        acc.conflicts <- acc.conflicts + s.conflicts;
        acc.decisions <- acc.decisions + s.decisions;
        acc.propagations <- acc.propagations + s.propagations;
        acc.bool_vars <- max acc.bool_vars s.bool_vars;
        acc.literals <- max acc.literals s.literals;
        acc.time_s <- max acc.time_s s.time_s)
    results;
  acc

(* Clause sharing across optimization workers.  Every worker builds
   the same base formula (the [build] contract), so variables below the
   post-[build] count mean the same thing in all of them, and three
   kinds of clauses range over those variables only:
   - resolvents of the shared base formula (always sound to exchange);
   - consequences of a proved lower bound [cost >= l] — sound too,
     because the bound proof shows no model of the base formula sits
     below [l], hence such clauses hold in every model;
   - nothing else: a learnt clause that depends on some worker's
     *upper-bound* probe carries that probe's negated activation
     literal (activation variables are allocated after [build], and
     resolution never eliminates a literal whose variable occurs in
     one polarity only), so the variable filter rejects it.
   Filtering exports to literals below the base-variable count is
   therefore a sound sharing criterion, even though workers probe
   different bounds at different times. *)
let install_sharing pool ~share_lbd ~origin ctx =
  let s = Bv.solver ctx in
  let threshold = Solver.n_vars s in
  Solver.set_export_hook s
    (Some
       (fun lits ~lbd ->
         if
           (lbd <= share_lbd || Array.length lits <= 2)
           && Array.for_all (fun l -> Lit.var l < threshold) lits
         then ignore (Portfolio.Pool.export pool ~origin lits ~lbd)));
  if not (Solver.proof_on s) then begin
    let cursor = ref 0 in
    Solver.set_import_hook s
      (Some
         (fun () ->
           let n, cs = Portfolio.Pool.import pool ~origin ~cursor:!cursor in
           cursor := n;
           cs))
  end

(* -- cube-and-conquer mode --------------------------------------------- *)

(* Partition-based parallel minimization: cubes over the encoder's
   decision variables split the model space exhaustively, each cube is
   minimized independently (cube literals as extra assumptions,
   [persist_bounds:false] — a bound proved inside one cube does not
   hold globally), and the global optimum is the minimum over cube
   optima; the problem is infeasible iff every cube is.  Workers share
   one incumbent: a cube claimed while a global incumbent [c] exists is
   probed under [cost <= c-1], so cubes that cannot improve the answer
   are closed by a single Unsat probe instead of a full descent. *)

(* What a finished cube contributes to the global answer: a lower
   bound on the cube's own optimum (max_int = cube proved empty), and
   whether that bound is final for the cube. *)
type cube_close = { cb_lb : int; cb_closed : bool }

let minimize_cubes ~jobs ?assumptions:(base_assumptions = []) ?refine
    ?max_conflicts ?budget ?(gap_tol = 0.) ?(share = true) ?(share_lbd = 4)
    ?split_vars ?(presolve_conflicts = 500)
    ~(build : unit -> Bv.ctx * Bv.t) ~(on_sat : Bv.ctx -> int -> 'a) () =
  let t0 = Unix.gettimeofday () in
  let seq () =
    minimize_seq ~mode:Incremental ~assumptions:base_assumptions ?refine
      ?max_conflicts ?budget ~gap_tol ~build ~on_sat ()
  in
  let finish (a, stats) =
    stats.time_s <- Unix.gettimeofday () -. t0;
    (a, stats)
  in
  let ctx0, _cost0 = build () in
  match
    Portfolio.Cube.generate ~target:(max 16 (4 * jobs)) ~presolve_conflicts
      ?split_vars (Bv.solver ctx0)
  with
  | Portfolio.Cube.Decided Solver.Unsat ->
    finish
      ( { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Infeasible },
        empty_stats () )
  | Portfolio.Cube.Decided (Solver.Sat | Solver.Unknown) ->
    (* the presolve finished (or probing stalled): the instance is easy
       enough that cube overhead cannot pay off — minimize sequentially *)
    finish (seq ())
  | Portfolio.Cube.Cubes cubes_l ->
    let cubes = Array.of_list cubes_l in
    let n = Array.length cubes in
    Obs.instant "opt.cubes.plan"
      ~attrs:[ ("cubes", string_of_int n); ("jobs", string_of_int jobs) ];
    let work = Portfolio.Cube.Work.create ~jobs n in
    let pool = Portfolio.Pool.create () in
    (* shared incumbent: cost in an atomic for cheap pruning reads,
       payload under a mutex, updated only when the cost CAS wins *)
    let best_cost = Atomic.make max_int in
    let best_lock = Mutex.create () in
    let best_payload = ref None in
    let merge_incumbent c p =
      let rec loop () =
        let cur = Atomic.get best_cost in
        if c < cur then
          if Atomic.compare_and_set best_cost cur c then begin
            Mutex.lock best_lock;
            (match !best_payload with
            | Some (c', _) when c' <= c -> () (* raced by a better one *)
            | _ -> best_payload := Some (c, p));
            Mutex.unlock best_lock
          end
          else loop ()
      in
      loop ()
    in
    (* per-cube contributions; each index is written by exactly the
       worker that claimed the cube, and read only after the join *)
    let closes = Array.make n None in
    let worker w config ~budget:wbudget =
      let stats = empty_stats () in
      let ctx, cost = build () in
      Solver.set_config (Bv.solver ctx) config;
      if share then install_sharing pool ~share_lbd ~origin:w ctx;
      let stop () =
        match wbudget with Some b -> Budget.exhausted b | None -> false
      in
      let continue_ = ref true in
      while !continue_ && not (stop ()) do
        match Portfolio.Cube.Work.next work ~worker:w with
        | None -> continue_ := false
        | Some (i, stolen) ->
          let cube = cubes.(i) in
          (* prune against the global incumbent captured at claim time:
             it only ever decreases, so closing a cube under this bound
             stays sound against the final incumbent *)
          let ub = Atomic.get best_cost in
          let bound_assum =
            if ub = max_int then []
            else
              match Bv.le_const ctx cost (ub - 1) with
              | Circuits.Lit g -> [ g ]
              | Circuits.One -> []
              | Circuits.Zero -> [] (* cost can't go below ub: probe will close the cube anyway *)
          in
          let a, cube_stats =
            Obs.span "opt.cubes.cube"
              ~attrs:
                [
                  ("cube", string_of_int i);
                  ("worker", string_of_int w);
                  ("stolen", string_of_bool stolen);
                ]
              (fun () ->
                minimize_seq ~mode:Incremental
                  ~strategy:(strategy_of_worker w)
                  ~assumptions:(base_assumptions @ cube @ bound_assum)
                  ~persist_bounds:false ?refine ?max_conflicts
                  ?budget:wbudget ~gap_tol
                  ~build:(fun () -> (ctx, cost))
                  ~on_sat ())
          in
          stats.probes <- stats.probes + cube_stats.probes;
          stats.sat_probes <- stats.sat_probes + cube_stats.sat_probes;
          stats.unsat_probes <- stats.unsat_probes + cube_stats.unsat_probes;
          stats.interrupted_probes <-
            stats.interrupted_probes + cube_stats.interrupted_probes;
          stats.conflicts <- stats.conflicts + cube_stats.conflicts;
          stats.decisions <- stats.decisions + cube_stats.decisions;
          stats.propagations <- stats.propagations + cube_stats.propagations;
          stats.bool_vars <- max stats.bool_vars cube_stats.bool_vars;
          stats.literals <- max stats.literals cube_stats.literals;
          (match a.incumbent with
          | Some (c, p) -> merge_incumbent c p
          | None -> ());
          (match a.resolution with
          | Infeasible ->
            (* no model under the bound: the cube's optimum (if any) is
               >= ub, itself >= the final incumbent — closed *)
            closes.(i) <- Some { cb_lb = ub; cb_closed = true }
          | Optimal ->
            let c = match a.incumbent with Some (c, _) -> c | None -> 0 in
            closes.(i) <- Some { cb_lb = c; cb_closed = true }
          | Feasible_budget_exhausted ->
            closes.(i) <- Some { cb_lb = a.lower_bound; cb_closed = false };
            continue_ := false
          | Unknown ->
            closes.(i) <- Some { cb_lb = 0; cb_closed = false };
            continue_ := false)
      done;
      stats
    in
    (* no early winner: optimality needs every cube closed, so workers
       run until the queue drains (or the parent budget cancels) *)
    let race_outcome =
      Portfolio.race ~jobs ?budget ~worker ~conclusive:(fun _ -> false) ()
    in
    let stats = empty_stats () in
    Array.iter
      (function
        | None -> ()
        | Some (s : stats) ->
          stats.probes <- stats.probes + s.probes;
          stats.sat_probes <- stats.sat_probes + s.sat_probes;
          stats.unsat_probes <- stats.unsat_probes + s.unsat_probes;
          stats.interrupted_probes <- stats.interrupted_probes + s.interrupted_probes;
          stats.conflicts <- stats.conflicts + s.conflicts;
          stats.decisions <- stats.decisions + s.decisions;
          stats.propagations <- stats.propagations + s.propagations;
          stats.bool_vars <- max stats.bool_vars s.bool_vars;
          stats.literals <- max stats.literals s.literals)
      race_outcome.Portfolio.results;
    (if jobs > 1 then
       match budget with
       | None -> ()
       | Some b ->
         let fold f =
           Array.fold_left
             (fun m -> function None -> m | Some s -> max m (f s))
             0 race_outcome.Portfolio.results
         in
         Budget.charge b
           ~conflicts:(fold (fun (s : stats) -> s.conflicts))
           ~propagations:(fold (fun (s : stats) -> s.propagations)));
    let all_closed = Array.for_all (function Some c -> c.cb_closed | None -> false) closes in
    let lb =
      Array.fold_left
        (fun m -> function Some c -> min m c.cb_lb | None -> min m 0)
        max_int closes
    in
    let incumbent =
      Mutex.lock best_lock;
      let i = !best_payload in
      Mutex.unlock best_lock;
      i
    in
    if Obs.metrics_on () then begin
      Obs.Metrics.set "opt.cubes.generated" n;
      Obs.Metrics.set "opt.cubes.closed"
        (Array.fold_left
           (fun k -> function Some c when c.cb_closed -> k + 1 | _ -> k)
           0 closes)
    end;
    let answer =
      match incumbent with
      | None ->
        if all_closed then
          (* every cube proved empty with no bound assumption in play
             (bounds are only assumed once an incumbent exists) *)
          { incumbent = None; lower_bound = 0; upper_bound = None; resolution = Infeasible }
        else
          { incumbent = None; lower_bound = (if lb = max_int then 0 else lb);
            upper_bound = None; resolution = Unknown }
      | Some (c, _) ->
        let lb = min lb c in
        if all_closed || lb >= c then
          { incumbent; lower_bound = c; upper_bound = Some c; resolution = Optimal }
        else
          { incumbent; lower_bound = lb; upper_bound = Some c;
            resolution = Feasible_budget_exhausted }
    in
    finish (answer, stats)

(* Public entry point.  [jobs <= 1] is exactly the sequential search.
   [jobs > 1] races workers that differ in solver configuration (via
   {!Portfolio.diversify}) *and* in probe-point strategy, because on a
   bounded number of cores strategy diversity is what reduces total
   work: a top-down prober certifies an already-optimal first model in
   a single Unsat probe where bisection needs the whole ladder.
   The first worker to prove optimality or infeasibility (or to reach
   the gap tolerance) wins and cancels the rest; if no one concludes,
   the workers' bounds are merged — every proved bound holds for the
   shared problem, so the combined answer can be strictly stronger
   than any single worker's.

   With [jobs > 1], [build] and [on_sat] are invoked concurrently from
   several domains and must be thread-safe. *)
let minimize ?mode ?(jobs = 1) ?(parallel = `Portfolio) ?split_vars
    ?assumptions ?persist_bounds ?refine ?max_conflicts ?budget ?(gap_tol = 0.)
    ?(share = true) ?(share_lbd = 4)
    ~(build : unit -> Bv.ctx * Bv.t) ~(on_sat : Bv.ctx -> int -> 'a) () =
  if jobs <= 1 then
    minimize_seq ?mode ?assumptions ?persist_bounds ?refine ?max_conflicts
      ?budget ~gap_tol ~build ~on_sat ()
  else if parallel = `Cubes then
    (* cube mode owns its assumption handling ([persist_bounds] is
       forced off inside each cube) and requires a dedicated session,
       which every current caller of [jobs > 1] provides *)
    minimize_cubes ~jobs ?assumptions ?refine ?max_conflicts ?budget ~gap_tol
      ~share ~share_lbd ?split_vars ~build ~on_sat ()
  else begin
    let t0 = Unix.gettimeofday () in
    let pool = Portfolio.Pool.create () in
    let build_for i =
      if not share then build
      else fun () ->
        let ctx, cost = build () in
        install_sharing pool ~share_lbd ~origin:i ctx;
        (ctx, cost)
    in
    let acceptable (a : _ anytime) =
      match a.resolution with
      | Optimal | Infeasible -> true
      | Feasible_budget_exhausted | Unknown -> (
        (* a gap-tolerance convergence is as final as optimality *)
        gap_tol > 0.
        &&
        match a.incumbent with
        | Some (ub, _) ->
          float_of_int (ub - a.lower_bound) <= gap_tol *. float_of_int ub
        | None -> false)
    in
    let outcome =
      Portfolio.race ~jobs ?budget
        ~worker:(fun i config ~budget ->
          minimize_seq ?mode ~strategy:(strategy_of_worker i) ~config
            ?assumptions ?persist_bounds ?refine ?max_conflicts ?budget
            ~gap_tol ~build:(build_for i) ~on_sat ())
        ~conclusive:(fun (a, _) -> acceptable a)
        ()
    in
    let stats = combine_stats outcome.results in
    stats.time_s <- Unix.gettimeofday () -. t0;
    (* charge the parent with the maximum worker spend: the workers
       raced concurrently, so the max mirrors the sequential shape *)
    (match budget with
    | None -> ()
    | Some b ->
      let fold f =
        Array.fold_left
          (fun m -> function None -> m | Some (_, s) -> max m (f s))
          0 outcome.results
      in
      Budget.charge b
        ~conflicts:(fold (fun s -> s.conflicts))
        ~propagations:(fold (fun s -> s.propagations)));
    let answer =
      if outcome.winner >= 0 then
        match outcome.results.(outcome.winner) with
        | Some (a, _) -> a
        | None -> combine_anytime outcome.results
      else combine_anytime outcome.results
    in
    (answer, stats)
  end

(* Single feasibility check (no optimization). *)
type 'a feasibility = Feasible of 'a | No_solution | Undecided

let solve_feasible ?max_conflicts ?(budget = Budget.unlimited ())
    ~(build : unit -> Bv.ctx) ~(on_sat : Bv.ctx -> 'a) () =
  let ctx = build () in
  let s = Bv.solver ctx in
  match Solver.solve ?max_conflicts ~budget s with
  | Solver.Sat -> Feasible (on_sat ctx)
  | Solver.Unsat -> No_solution
  | Solver.Unknown -> Undecided
