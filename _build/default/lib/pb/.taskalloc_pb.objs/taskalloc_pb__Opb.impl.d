lib/pb/opb.ml: Fmt Hashtbl List Lit Option Pb Solver String Taskalloc_sat
