(* Pseudo-Boolean solver CLI for the OPB-like format accepted by
   {!Taskalloc_pb.Opb}:

     * comment
     +2 x1 +3 x2 -1 x3 >= 2 ;
     +1 x1 +1 x4 = 1 ;

   Usage:  pbsolve FILE.opb *)

open Taskalloc_sat
open Taskalloc_pb

let () =
  match Sys.argv with
  | [| _; path |] -> (
    let solver, vars =
      try Opb.parse_file path
      with Opb.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 2
    in
    match Solver.solve solver with
    | Solver.Sat ->
      print_endline "s SATISFIABLE";
      let entries =
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) vars []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, v) ->
          Printf.printf "v %s%s\n"
            (if Solver.model_value solver (Lit.of_var v) then "" else "-")
            name)
        entries
    | Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
    | Solver.Unknown ->
      print_endline "s UNKNOWN";
      exit 30)
  | _ ->
    prerr_endline "usage: pbsolve FILE.opb";
    exit 2
