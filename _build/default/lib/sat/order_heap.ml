(* Binary max-heap over variables ordered by VSIDS activity.  The heap
   stores variable indices; [indices.(v)] gives v's position in the heap
   (or -1 when absent), enabling O(log n) increase-key when a variable's
   activity is bumped. *)

type t = {
  mutable heap : int array;
  mutable indices : int array; (* var -> heap position, -1 if absent *)
  mutable size : int;
  activity : float array ref;  (* shared with the solver; grows with vars *)
}

let create activity =
  { heap = Array.make 16 0; indices = Array.make 16 (-1); size = 0; activity }

let ensure_var t v =
  let n = Array.length t.indices in
  if v >= n then begin
    let m = max (2 * n) (v + 1) in
    let indices = Array.make m (-1) in
    Array.blit t.indices 0 indices 0 n;
    t.indices <- indices
  end

let in_heap t v = v < Array.length t.indices && t.indices.(v) >= 0
let is_empty t = t.size = 0
let size t = t.size

let lt t u v = !(t.activity).(u) > !(t.activity).(v) (* max-heap on activity *)

let percolate_up t i =
  let x = t.heap.(i) in
  let i = ref i in
  while !i > 0 && lt t x t.heap.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    t.heap.(!i) <- t.heap.(parent);
    t.indices.(t.heap.(!i)) <- !i;
    i := parent
  done;
  t.heap.(!i) <- x;
  t.indices.(x) <- !i

let percolate_down t i =
  let x = t.heap.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue && (2 * !i) + 1 < t.size do
    let l = (2 * !i) + 1 in
    let child =
      if l + 1 < t.size && lt t t.heap.(l + 1) t.heap.(l) then l + 1 else l
    in
    if lt t t.heap.(child) x then begin
      t.heap.(!i) <- t.heap.(child);
      t.indices.(t.heap.(!i)) <- !i;
      i := child
    end
    else continue := false
  done;
  t.heap.(!i) <- x;
  t.indices.(x) <- !i

let insert t v =
  ensure_var t v;
  if not (in_heap t v) then begin
    if t.size = Array.length t.heap then begin
      let heap = Array.make (2 * t.size) 0 in
      Array.blit t.heap 0 heap 0 t.size;
      t.heap <- heap
    end;
    t.heap.(t.size) <- v;
    t.indices.(v) <- t.size;
    t.size <- t.size + 1;
    percolate_up t (t.size - 1)
  end

(* Restore heap order for [v] after its activity increased. *)
let decrease t v = if in_heap t v then percolate_up t t.indices.(v)

let remove_max t =
  assert (t.size > 0);
  let x = t.heap.(0) in
  t.size <- t.size - 1;
  t.indices.(x) <- -1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.indices.(t.heap.(0)) <- 0;
    percolate_down t 0
  end;
  x
