(* Differential equivalence harness for the lazy/CEGAR response-time
   encoding.

   The eager encoding (the paper's full transformation) is the oracle:
   on every instance the lazy encoding must reach the same verdict and
   the same proven optimum, and its allocations must pass the
   independent analytical checker.  On top of the randomized
   differential sweep, metamorphic transformations (time scaling, task
   relabeling) must leave verdicts invariant, budget interrupts must
   degrade to a clean resumable Unknown, refinement is bounded and
   monotone, and a lazy Unsat must still carry a machine-checkable
   DRUP certificate and a sensible unsat core. *)

open Taskalloc_rt
open Taskalloc_core
open Taskalloc_workloads
module Opt = Taskalloc_opt.Opt
module Solver = Taskalloc_sat.Solver
module Lit = Taskalloc_sat.Lit
module Budget = Taskalloc_sat.Budget
module Bv = Taskalloc_bv.Bv
module Proof = Taskalloc_proof.Proof
module Fuzz = Taskalloc_fuzz.Fuzz
module Explain = Taskalloc_explain.Explain

let eager_opts = { Encode.default_options with Encode.lazy_mode = false }
let lazy_opts = { Encode.default_options with Encode.lazy_mode = true }

let solve_with options problem objective =
  Allocator.solve ~options ~fallback:false problem objective

(* -- randomized differential sweep -------------------------------------- *)

(* The campaign itself lives in lib/fuzz (it also backs `taskalloc fuzz
   --lazy`); here it runs as a test with a fixed seed.  Every case is
   solved eager and lazy and must agree on verdict, optimum, and
   analyzer validation. *)
let differential ~iters ~seed () =
  let report = Fuzz.run_lazy ~iters ~seed () in
  Alcotest.(check int) "all cases decided" iters
    (report.Fuzz.l_sat + report.Fuzz.l_unsat);
  Alcotest.(check int) "no unknowns" 0 report.Fuzz.l_unknown;
  Alcotest.(check (list string)) "no discrepancies" [] report.Fuzz.l_failures

let test_differential_quick () = differential ~iters:15 ~seed:11 ()
let test_differential_full () = differential ~iters:100 ~seed:1 ()

(* -- refinement bounds and monotonicity --------------------------------- *)

(* Drive the solve/refine loop by hand on a lazy encoding: refined
   counts only grow, never exceed n_tasks + n_media, each Sat round
   either refines or terminates, and the loop finishes within the
   guaranteed bound. *)
let test_refinement_monotone () =
  let problem = Workloads.task_scaling ~n:12 () in
  let n_tasks = Array.length problem.Model.tasks in
  let n_media = List.length problem.Model.arch.Model.media in
  let enc = Encode.encode ~options:lazy_opts problem Encode.Feasible in
  Alcotest.(check bool) "encoding is lazy" true (Encode.Lazy.is_lazy enc);
  let solver = Bv.solver (Encode.context enc) in
  let prev = ref (-1) in
  let rounds = ref 0 in
  let rec loop () =
    if !rounds > n_tasks + n_media then
      Alcotest.fail "refinement loop exceeded the n_tasks + n_media bound";
    match Solver.solve solver with
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown"
    | Solver.Sat ->
      let refined = Encode.Lazy.refined_tasks enc + Encode.Lazy.refined_media enc in
      Alcotest.(check bool) "refined count is monotone" true (refined >= !prev);
      prev := refined;
      let n = Encode.Lazy.refine enc in
      if n > 0 then begin
        incr rounds;
        loop ()
      end
      else `Sat
  in
  (match loop () with
  | `Sat ->
    (* a genuine model: the extracted allocation passes the checker *)
    Alcotest.(check (list Alcotest.reject)) "allocation validates" []
      (List.map (fun _ -> ()) (Check.check problem (Encode.extract enc)))
  | `Unsat -> Alcotest.fail "task_scaling 12 is known feasible");
  let total = Encode.Lazy.refined_tasks enc + Encode.Lazy.refined_media enc in
  Alcotest.(check bool) "refined <= n_tasks + n_media" true
    (total <= n_tasks + n_media);
  Alcotest.(check bool) "rounds <= refined entities" true
    (Encode.Lazy.rounds enc <= max 1 total);
  (* a genuine model stays genuine: refine is idempotent at fixpoint *)
  (match Solver.solve solver with
  | Solver.Sat -> Alcotest.(check int) "fixpoint: no further refinement" 0 (Encode.Lazy.refine enc)
  | _ -> Alcotest.fail "re-solve of a satisfiable formula failed")

(* -- metamorphic: time scaling ------------------------------------------ *)

(* Scaling every time quantity by k (periods, deadlines, WCETs, jitter,
   blocking, bus timing) preserves the verdict: ceil(k*a / k*b) =
   ceil(a / b), so every response-time fixpoint scales linearly and
   deadline checks are invariant.  (The objective value itself need not
   scale — a TDMA round has a minimum slot per station whatever the
   tick — so the property checked is verdict invariance plus
   lazy/eager agreement on the transformed instance.) *)
let scale_problem k (p : Model.problem) =
  let tasks =
    Array.to_list p.Model.tasks
    |> List.map (fun t ->
           {
             t with
             Model.period = t.Model.period * k;
             deadline = t.Model.deadline * k;
             wcets = List.map (fun (e, c) -> (e, c * k)) t.Model.wcets;
             jitter = t.Model.jitter * k;
             blocking = t.Model.blocking * k;
             messages =
               List.map
                 (fun m -> { m with Model.msg_deadline = m.Model.msg_deadline * k })
                 t.Model.messages;
           })
  in
  let arch =
    {
      p.Model.arch with
      Model.media =
        List.map
          (fun (m : Model.medium) ->
            {
              m with
              Model.byte_time = m.Model.byte_time * k;
              frame_overhead = m.Model.frame_overhead * k;
            })
          p.Model.arch.Model.media;
      gateway_service = p.Model.arch.Model.gateway_service * k;
    }
  in
  Model.make_problem ~arch ~tasks

let test_metamorphic_time_scaling () =
  let k = 3 in
  List.iter
    (fun (name, problem, objective) ->
      let scaled = scale_problem k problem in
      (match
         ( solve_with lazy_opts problem objective,
           solve_with lazy_opts scaled objective )
       with
      | Allocator.Solved a, Allocator.Solved b ->
        Alcotest.(check bool) (name ^ ": base validates") true (a.Allocator.violations = []);
        Alcotest.(check bool) (name ^ ": scaled validates") true (b.Allocator.violations = [])
      | Allocator.Infeasible, Allocator.Infeasible -> ()
      | _ -> Alcotest.fail (name ^ ": verdict changed under time scaling"));
      (* the differential property survives the transformation *)
      match
        ( solve_with eager_opts scaled objective,
          solve_with lazy_opts scaled objective )
      with
      | Allocator.Solved e, Allocator.Solved l ->
        Alcotest.(check int)
          (name ^ ": lazy = eager on the scaled instance")
          e.Allocator.cost l.Allocator.cost
      | Allocator.Infeasible, Allocator.Infeasible -> ()
      | _ -> Alcotest.fail (name ^ ": lazy/eager verdicts diverge when scaled"))
    [
      ("small", Workloads.small ~seed:9 (), Encode.Min_trt 0);
      ("jittery", Workloads.small_jittery ~seed:4 (), Encode.Min_trt 0);
      ("tasks7", Workloads.task_scaling ~n:7 (), Encode.Min_trt 0);
    ]

(* -- metamorphic: task relabeling --------------------------------------- *)

(* Reversing task ids on a message-free instance (remapping separation
   sets through the permutation) must not change the verdict or the
   optimal max-utilization: the encoding may order its variables
   differently, but the problem is the same. *)
let relabel_reverse (p : Model.problem) =
  let n = Array.length p.Model.tasks in
  let perm i = n - 1 - i in
  let tasks =
    List.init n (fun j ->
        let t = p.Model.tasks.(perm j) in
        if t.Model.messages <> [] then
          Alcotest.fail "relabel_reverse needs a message-free instance";
        {
          t with
          Model.task_id = j;
          separation = List.map perm t.Model.separation;
        })
  in
  Model.make_problem ~arch:p.Model.arch ~tasks

let strip_messages (p : Model.problem) =
  let tasks =
    Array.to_list p.Model.tasks
    |> List.map (fun t -> { t with Model.messages = [] })
  in
  Model.make_problem ~arch:p.Model.arch ~tasks

let test_metamorphic_relabeling () =
  List.iter
    (fun (name, problem) ->
      let problem = strip_messages problem in
      let relabeled = relabel_reverse problem in
      match
        ( solve_with lazy_opts problem Encode.Min_max_util,
          solve_with lazy_opts relabeled Encode.Min_max_util )
      with
      | Allocator.Solved a, Allocator.Solved b ->
        Alcotest.(check int)
          (name ^ ": optimum invariant under relabeling")
          a.Allocator.cost b.Allocator.cost
      | Allocator.Infeasible, Allocator.Infeasible -> ()
      | _ -> Alcotest.fail (name ^ ": verdict changed under relabeling"))
    [
      ("small", Workloads.small ~seed:2 ());
      ("tasks7", Workloads.task_scaling ~n:7 ());
    ]

(* -- budget interrupts: clean, resumable degradation -------------------- *)

(* Chaos over conflict caps: however early the budget trips, the lazy
   solve must return without an exception; proven-optimal answers must
   match the eager optimum; anytime answers must bracket it; and a
   later unbudgeted run must recover the exact optimum. *)
let test_budget_interrupt_chaos () =
  let problem = Workloads.small ~seed:7 () in
  let objective = Encode.Min_trt 0 in
  let optimum =
    match solve_with eager_opts problem objective with
    | Allocator.Solved r -> r.Allocator.cost
    | _ -> Alcotest.fail "reference eager solve failed"
  in
  List.iter
    (fun cap ->
      let budget = Budget.create ~max_conflicts:cap ~check_every:1 () in
      match
        Allocator.solve ~options:lazy_opts ~fallback:false ~budget problem
          objective
      with
      | Allocator.Unknown -> () (* clean interrupt before any incumbent *)
      | Allocator.Infeasible ->
        Alcotest.fail "budgeted lazy solve claimed Infeasible on a feasible instance"
      | Allocator.Solved r -> (
        Alcotest.(check bool)
          (Printf.sprintf "cap %d: incumbent validates" cap)
          true
          (r.Allocator.violations = []);
        match r.Allocator.quality with
        | Allocator.Optimal ->
          Alcotest.(check int)
            (Printf.sprintf "cap %d: proven optimum matches eager" cap)
            optimum r.Allocator.cost
        | Allocator.Anytime { lower_bound } ->
          Alcotest.(check bool)
            (Printf.sprintf "cap %d: anytime brackets the optimum" cap)
            true
            (lower_bound <= optimum && optimum <= r.Allocator.cost)
        | Allocator.Heuristic _ ->
          Alcotest.fail "fallback disabled but a heuristic answer came back"))
    [ 1; 4; 16; 64; 256 ];
  (* resumption: after any number of interrupted attempts, a fresh
     unbudgeted lazy solve still proves the exact optimum *)
  match solve_with lazy_opts problem objective with
  | Allocator.Solved r ->
    Alcotest.(check int) "resumed solve proves the optimum" optimum r.Allocator.cost
  | _ -> Alcotest.fail "unbudgeted lazy solve failed after interrupts"

(* A budget-interrupted what-if session must answer Unknown, stay
   usable, and produce the right verdict when re-asked with headroom —
   the growing (refined) formula survives the interrupt. *)
let test_whatif_interrupt_resumable () =
  let problem = Workloads.small ~seed:7 () in
  let module W = Explain.Whatif in
  let sess = W.create ~options:lazy_opts problem in
  let deltas = [ W.Set_deadline { task = 0; deadline = 40 } ] in
  let starved = Budget.create ~max_conflicts:0 ~check_every:1 () in
  (match W.query ~budget:starved sess deltas with
  | W.Unknown -> ()
  | W.Feasible _ | W.Infeasible _ ->
    (* a tiny instance may be decided by propagation alone before the
       budget is consulted; that is also a legal, clean outcome *)
    ());
  let reference =
    let eager_sess = W.create ~options:eager_opts problem in
    W.query eager_sess deltas
  in
  match (W.query sess deltas, reference) with
  | W.Feasible _, W.Feasible _ | W.Infeasible _, W.Infeasible _ -> ()
  | W.Unknown, _ | _, W.Unknown ->
    Alcotest.fail "unbudgeted what-if query returned Unknown"
  | _ -> Alcotest.fail "resumed lazy session disagrees with the eager session"

(* -- what-if deadline-delta cache regression ---------------------------- *)

(* Re-applying a cached Set_deadline delta must not reify a duplicate
   comparator: the solver's variable count stays flat.  And the entry
   must survive eviction pressure (LRU, not FIFO): a hot delta kept in
   use outlives a stream of cold one-off deadlines. *)
let test_whatif_deadline_cache () =
  let problem = Workloads.small ~seed:3 () in
  let module W = Explain.Whatif in
  let sess = W.create problem in
  let hot = [ W.Set_deadline { task = 0; deadline = 60 } ] in
  ignore (W.query sess hot);
  let vars_after_first = W.session_vars sess in
  for _ = 1 to 5 do
    ignore (W.query sess hot)
  done;
  Alcotest.(check int) "re-applied delta adds no variables" vars_after_first
    (W.session_vars sess);
  (* eviction pressure: well past the cache bound, touching the hot
     delta along the way so LRU keeps it resident *)
  for i = 0 to 139 do
    ignore (W.query sess [ W.Set_deadline { task = 1; deadline = 300 + i } ]);
    if i mod 20 = 0 then ignore (W.query sess hot)
  done;
  Alcotest.(check bool) "cache stays bounded" true
    (W.cached_deadline_bits sess <= 128);
  let vars_after_pressure = W.session_vars sess in
  ignore (W.query sess hot);
  Alcotest.(check int) "hot delta survived eviction pressure"
    vars_after_pressure (W.session_vars sess)

(* -- lazy Unsat: DRUP certificate and unsat core ------------------------ *)

(* An infeasible instance that needs search to refute: five heavy tasks
   on two ECUs — by pigeonhole some ECU carries three, busting its
   utilization — so the refutation is found while solving (not at
   encode time, where a recording proof sink could not yet exist) and
   must hold whatever mix of abstraction and refinement the run went
   through. *)
let infeasible_problem () =
  let task i =
    {
      Model.task_id = i;
      task_name = Printf.sprintf "heavy%d" i;
      period = 100;
      wcets = [ (0, 45); (1, 45) ];
      deadline = 90 + i;
      memory = 1;
      separation = [];
      messages = [];
      jitter = 0;
      blocking = 0;
      criticality = 0;
    }
  in
  let arch =
    {
      Model.n_ecus = 2;
      media = [];
      mem_capacity = [| max_int; max_int |];
      gateway_service = 0;
      barred = [];
    }
  in
  Model.make_problem ~arch ~tasks:(List.init 5 task)

let test_lazy_unsat_drup () =
  let problem = infeasible_problem () in
  let enc = Encode.encode ~options:lazy_opts problem Encode.Feasible in
  let solver = Bv.solver (Encode.context enc) in
  let trace = Proof.record solver in
  let rec loop guard =
    if guard = 0 then Alcotest.fail "refinement loop did not terminate";
    match Solver.solve solver with
    | Solver.Unsat -> ()
    | Solver.Sat ->
      if Encode.Lazy.refine enc > 0 then loop (guard - 1)
      else Alcotest.fail "lazy solve accepted an infeasible instance"
    | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown"
  in
  loop 16;
  (* reconstruct the final formula (abstraction + refinements) and
     certify the refutation with the independent DRUP checker *)
  let clauses =
    Solver.fold_clauses
      (fun acc lits -> List.map Lit.to_dimacs lits :: acc)
      (* input unit clauses never reach the clause database — they are
         enqueued directly at level 0 — so pick them up separately, as
         the OPB exporter does *)
      (List.map (fun l -> [ Lit.to_dimacs l ]) (Solver.level0_units solver))
      solver
  in
  let pbs =
    Solver.fold_pbs
      (fun acc (terms, degree) ->
        {
          Proof.terms = List.map (fun (c, l) -> (c, Lit.to_dimacs l)) terms;
          degree;
        }
        :: acc)
      [] solver
  in
  let cnf =
    { Taskalloc_sat.Dimacs.num_vars = Solver.n_vars solver; clauses }
  in
  Alcotest.(check bool) "DRUP trace certifies the lazy Unsat" true
    (Proof.check ~pbs cnf (trace ()))

let test_lazy_unsat_core () =
  let problem = infeasible_problem () in
  let sess = Explain.Session.create ~options:lazy_opts problem in
  match Explain.Session.solve_all sess with
  | Solver.Sat -> Alcotest.fail "grouped lazy session accepted an infeasible instance"
  | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown"
  | Solver.Unsat ->
    let core = Explain.Session.core_indices sess in
    let groups = Explain.Session.groups sess in
    List.iter
      (fun i ->
        if i < 0 || i >= Array.length groups then
          Alcotest.fail "core index outside the group registry")
      core;
    (* three deadline groups over one saturated ECU: at least one
       deadline must be in the core, and relaxing the whole core must
       restore feasibility *)
    let kinds =
      List.map (fun i -> groups.(i).Encode.kind) core
    in
    Alcotest.(check bool) "core names at least one deadline group" true
      (List.exists
         (function Encode.G_deadline _ -> true | _ -> false)
         kinds);
    (* the core's defining property: enforcing it alone is already
       unsatisfiable, every other group left free *)
    (match Explain.Session.solve sess core with
    | Solver.Unsat -> ()
    | _ -> Alcotest.fail "enforcing only the core groups is satisfiable");
    (* shrink to a MUS on the growing lazy formula and verify true
       minimality: dropping any single member restores satisfiability *)
    let mus, proven =
      Explain.shrink ~sessions:[| sess |] core
    in
    Alcotest.(check bool) "MUS shrink completed" true proven;
    (match Explain.Session.solve sess mus with
    | Solver.Unsat -> ()
    | _ -> Alcotest.fail "shrunk MUS is satisfiable");
    List.iter
      (fun dropped ->
        match
          Explain.Session.solve sess (List.filter (fun i -> i <> dropped) mus)
        with
        | Solver.Sat -> ()
        | _ ->
          Alcotest.fail
            "MUS is not minimal on the lazy session: a proper subset is \
             still unsat")
      mus

(* -- lazy/eager equivalence on the named workloads ---------------------- *)

let test_named_workloads_agree () =
  List.iter
    (fun (name, problem, objective) ->
      match
        ( solve_with eager_opts problem objective,
          solve_with lazy_opts problem objective )
      with
      | Allocator.Solved e, Allocator.Solved l ->
        Alcotest.(check int) (name ^ ": same optimum") e.Allocator.cost
          l.Allocator.cost;
        Alcotest.(check bool) (name ^ ": lazy validates") true
          (l.Allocator.violations = []);
        Alcotest.(check bool)
          (name ^ ": lazy final formula is no larger")
          true
          (l.Allocator.bool_vars <= e.Allocator.bool_vars)
      | Allocator.Infeasible, Allocator.Infeasible -> ()
      | _ -> Alcotest.fail (name ^ ": verdicts diverge"))
    [
      ("small", Workloads.small ~seed:1 (), Encode.Min_trt 0);
      ("small-can", Workloads.small_can ~seed:1 (), Encode.Min_bus_load 0);
      ("small-hier", Workloads.small_hierarchical Workloads.C, Encode.Min_sum_trt);
      ("tasks12", Workloads.task_scaling ~n:12 (), Encode.Min_trt 0);
    ]

let suite =
  [
    ("differential lazy = eager (15 cases)", `Quick, test_differential_quick);
    ("differential lazy = eager (100 cases)", `Slow, test_differential_full);
    ("refinement is monotone and bounded", `Quick, test_refinement_monotone);
    ("metamorphic: time scaling", `Slow, test_metamorphic_time_scaling);
    ("metamorphic: task relabeling", `Quick, test_metamorphic_relabeling);
    ("budget interrupts degrade cleanly", `Quick, test_budget_interrupt_chaos);
    ("interrupted what-if session resumes", `Quick, test_whatif_interrupt_resumable);
    ("what-if deadline cache never re-reifies", `Quick, test_whatif_deadline_cache);
    ("lazy Unsat carries a DRUP certificate", `Quick, test_lazy_unsat_drup);
    ("lazy Unsat core is sensible", `Quick, test_lazy_unsat_core);
    ("named workloads: lazy = eager", `Slow, test_named_workloads_agree);
  ]
